#ifndef HDIDX_TESTS_TEST_UTIL_H_
#define HDIDX_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "common/random.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/rtree.h"

namespace hdidx::testing {

/// Small clustered dataset shared by many tests: deterministic for a given
/// seed, sized for sub-second index builds.
data::Dataset SmallClustered(size_t n, size_t dim, uint64_t seed);

/// Structural invariants every bulk-loaded tree must satisfy:
///  * every point appears in exactly one leaf range;
///  * every leaf MBR contains its points;
///  * every directory MBR contains its children's MBRs;
///  * child levels are exactly one below their parent's;
///  * leaf ranges tile [0, n) without gaps or overlaps.
/// Reports failures through GoogleTest expectations.
void ExpectValidTree(const index::RTree& tree, const data::Dataset& data,
                     size_t expected_leaf_level);

/// Bit-identity of two builds: same node ids, levels, child lists, leaf
/// ranges, page weights, exact MBR floats, leaf order and point
/// permutation. This is the build-equivalence contract the parallel bulk
/// loader guarantees against the serial one; `what` labels failures (e.g.
/// "4 threads vs serial").
void ExpectTreesIdentical(const index::RTree& expected,
                          const index::RTree& actual, const char* what);

}  // namespace hdidx::testing

#endif  // HDIDX_TESTS_TEST_UTIL_H_
