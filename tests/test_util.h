#ifndef HDIDX_TESTS_TEST_UTIL_H_
#define HDIDX_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "common/random.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "index/rtree.h"

namespace hdidx::testing {

/// Small clustered dataset shared by many tests: deterministic for a given
/// seed, sized for sub-second index builds.
data::Dataset SmallClustered(size_t n, size_t dim, uint64_t seed);

/// Structural invariants every bulk-loaded tree must satisfy:
///  * every point appears in exactly one leaf range;
///  * every leaf MBR contains its points;
///  * every directory MBR contains its children's MBRs;
///  * child levels are exactly one below their parent's;
///  * leaf ranges tile [0, n) without gaps or overlaps.
/// Reports failures through GoogleTest expectations.
void ExpectValidTree(const index::RTree& tree, const data::Dataset& data,
                     size_t expected_leaf_level);

}  // namespace hdidx::testing

#endif  // HDIDX_TESTS_TEST_UTIL_H_
