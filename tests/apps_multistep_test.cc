#include "apps/multistep_knn.h"

#include <algorithm>
#include <memory>
#include <span>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::apps {
namespace {

class MultiStepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    full_ = hdidx::testing::SmallClustered(4000, 16, 51);
    projected_ = full_.ProjectPrefix(4);
    topo_ = std::make_unique<index::TreeTopology>(projected_.size(), 30, 8);
    index::BulkLoadOptions options;
    options.topology = topo_.get();
    tree_ = std::make_unique<index::RTree>(
        index::BulkLoadInMemory(projected_, options));
  }

  data::Dataset full_{1};
  data::Dataset projected_{1};
  std::unique_ptr<index::TreeTopology> topo_;
  std::unique_ptr<index::RTree> tree_;
};

TEST_F(MultiStepTest, ReturnsExactFullSpaceKnn) {
  common::Rng rng(52);
  for (int trial = 0; trial < 15; ++trial) {
    const auto query = full_.row(rng.NextBounded(full_.size()));
    const auto result = MultiStepKnn(*tree_, projected_, full_, query, 7);
    const double exact = index::ExactKthDistance(full_, query, 7, -1.0);
    EXPECT_NEAR(result.kth_distance, exact, 1e-9) << "trial " << trial;
    ASSERT_EQ(result.neighbors.size(), 7u);
    // Ascending full-space distances.
    double prev = -1.0;
    for (size_t row : result.neighbors) {
      const double d = geometry::L2(full_.row(row), query);
      EXPECT_GE(d, prev - 1e-12);
      prev = d;
    }
  }
}

TEST_F(MultiStepTest, RefinementsAtLeastKAndBelowN) {
  const auto query = full_.row(11);
  const auto result = MultiStepKnn(*tree_, projected_, full_, query, 9);
  EXPECT_GE(result.refinements, 9u);
  EXPECT_LT(result.refinements, full_.size());
  EXPECT_GT(result.index_accesses.leaf_accesses, 0u);
  // I/O: one random access per page + per refinement.
  EXPECT_EQ(result.io.page_seeks,
            result.index_accesses.total() + result.refinements);
}

TEST_F(MultiStepTest, MoreIndexedDimsFewerRefinements) {
  // A higher-dimensional filter is tighter: refinements shrink.
  const auto query = full_.row(42);
  size_t prev = full_.size() + 1;
  for (size_t d : {2u, 4u, 8u, 16u}) {
    const data::Dataset proj = full_.ProjectPrefix(d);
    const index::TreeTopology topo(proj.size(), 30, 8);
    index::BulkLoadOptions options;
    options.topology = &topo;
    const index::RTree tree = index::BulkLoadInMemory(proj, options);
    const auto result = MultiStepKnn(tree, proj, full_, query, 5);
    EXPECT_LE(result.refinements, prev + 3) << d << " dims";
    prev = result.refinements;
    // Always exact regardless of the filter dimensionality.
    EXPECT_NEAR(result.kth_distance,
                index::ExactKthDistance(full_, query, 5, -1.0), 1e-9);
  }
  // Full-dimensional filter refines (nearly) only the k results.
  EXPECT_LE(prev, 8u);
}

TEST_F(MultiStepTest, RefinementsMatchTheMinimalCandidateSet) {
  // Optimality (Seidl-Kriegel): exactly the points whose reduced-space
  // distance is within the full-space k-th distance are refined (plus
  // boundary ties).
  const auto query = full_.row(99);
  const size_t k = 6;
  const auto result = MultiStepKnn(*tree_, projected_, full_, query, k);
  const double r = result.kth_distance;
  size_t minimal = 0;
  const auto query_reduced =
      std::span<const float>(query).subspan(0, projected_.dim());
  for (size_t i = 0; i < projected_.size(); ++i) {
    if (geometry::L2(projected_.row(i), query_reduced) <= r) ++minimal;
  }
  EXPECT_GE(result.refinements, minimal > 0 ? minimal - 1 : 0);
  EXPECT_LE(result.refinements, minimal + 1);  // boundary ties
}

}  // namespace
}  // namespace hdidx::apps
