// The parallel execution layer's headline invariant: every library entry
// point that fans out on an ExecutionContext produces bit-identical results
// for every thread count (see src/common/parallel.h for the contract). These
// tests run the refactored paths under explicit 1/2/8-thread pools and
// compare exact bit patterns — EXPECT_EQ on doubles, not EXPECT_NEAR.

#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "core/mini_index.h"
#include "core/predictor.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "geometry/kernels.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "test_util.h"
#include "workload/query_workload.h"

namespace hdidx {
namespace {

// Runs `fn(ctx)` under pools of 1, 2 and 8 threads and returns the three
// results for comparison.
template <typename Fn>
auto RunAtThreadCounts(Fn&& fn) {
  using Result = decltype(fn(common::ExecutionContext()));
  std::vector<Result> results;
  for (size_t threads : {1u, 2u, 8u}) {
    common::ThreadPool pool(threads);
    const common::ExecutionContext ctx(&pool);
    results.push_back(fn(ctx));
  }
  return results;
}

TEST(ParallelDeterminismTest, WorkloadCreateBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(2000, 8, 21);
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    common::Rng rng(5);
    return workload::QueryWorkload::Create(data, 40, 7, &rng, ctx);
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].num_queries(), runs[0].num_queries());
    EXPECT_EQ(runs[r].query_rows(), runs[0].query_rows());
    for (size_t i = 0; i < runs[0].num_queries(); ++i) {
      EXPECT_EQ(runs[r].radius(i), runs[0].radius(i)) << "query " << i;
    }
  }
}

TEST(ParallelDeterminismTest, ScanForWorkloadAndSampleBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(1500, 6, 23);
  struct Run {
    workload::ScanResult scan;
    io::IoStats io;
  };
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
    common::Rng rng(6);
    Run run{workload::ScanForWorkloadAndSample(&file, 25, 5, 200, &rng, ctx),
            file.stats()};
    return run;
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    // Simulated I/O accounting stays serial and must be byte-identical.
    EXPECT_EQ(runs[r].io.page_seeks, runs[0].io.page_seeks);
    EXPECT_EQ(runs[r].io.page_transfers, runs[0].io.page_transfers);
    ASSERT_EQ(runs[r].scan.workload.num_queries(),
              runs[0].scan.workload.num_queries());
    for (size_t i = 0; i < runs[0].scan.workload.num_queries(); ++i) {
      EXPECT_EQ(runs[r].scan.workload.radius(i),
                runs[0].scan.workload.radius(i));
    }
    ASSERT_EQ(runs[r].scan.sample.size(), runs[0].scan.sample.size());
    EXPECT_EQ(runs[r].scan.sampling_ratio, runs[0].scan.sampling_ratio);
  }
}

TEST(ParallelDeterminismTest, PredictWithMiniIndexBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(3000, 8, 25);
  const index::TreeTopology topo(data.size(), 33, 16);
  common::Rng wrng(7);
  const workload::QueryWorkload queries =
      workload::QueryWorkload::Create(data, 30, 11, &wrng);
  core::MiniIndexParams params;
  params.sampling_fraction = 0.2;
  params.seed = 17;
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    return core::PredictWithMiniIndex(data, topo, queries, params, ctx);
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].avg_leaf_accesses, runs[0].avg_leaf_accesses);
    EXPECT_EQ(runs[r].per_query_accesses, runs[0].per_query_accesses);
    EXPECT_EQ(runs[r].num_predicted_leaves, runs[0].num_predicted_leaves);
    EXPECT_EQ(runs[r].sigma_upper, runs[0].sigma_upper);
  }
}

TEST(ParallelDeterminismTest, MeasureLeafAccessesBitIdenticalWithIo) {
  const auto data = hdidx::testing::SmallClustered(2500, 6, 27);
  const index::TreeTopology topo(data.size(), 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  common::Rng wrng(9);
  const workload::QueryWorkload queries =
      workload::QueryWorkload::Create(data, 35, 9, &wrng);
  struct Run {
    std::vector<double> accesses;
    io::IoStats io;
  };
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    Run run;
    run.accesses = core::MeasureLeafAccesses(tree, queries, &run.io, ctx);
    return run;
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].accesses, runs[0].accesses);
    EXPECT_EQ(runs[r].io.page_seeks, runs[0].io.page_seeks);
    EXPECT_EQ(runs[r].io.page_transfers, runs[0].io.page_transfers);
  }
}

TEST(ParallelDeterminismTest, CountSphereLeafAccessesBitIdenticalWithIo) {
  const auto data = hdidx::testing::SmallClustered(2000, 5, 29);
  const index::TreeTopology topo(data.size(), 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  common::Rng wrng(13);
  const workload::QueryWorkload queries =
      workload::QueryWorkload::Create(data, 30, 5, &wrng);
  struct Run {
    std::vector<double> accesses;
    io::IoStats io;
  };
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    Run run;
    run.accesses = index::CountSphereLeafAccesses(
        tree, queries.queries(), queries.radii(), &run.io, ctx);
    return run;
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].accesses, runs[0].accesses);
    EXPECT_EQ(runs[r].io.page_seeks, runs[0].io.page_seeks);
    EXPECT_EQ(runs[r].io.page_transfers, runs[0].io.page_transfers);
  }
}

// The kernel-mode extension of the same contract: HDIDX_KERNEL=scalar and
// the batched default must produce bit-identical results for every thread
// count. One pass per (mode, threads) combination over every kernelized
// entry point — workload radii, mini-index and resampled predictions, tree
// sphere traversal, tree k-NN search, tree layout digests — all compared
// exactly against the scalar single-thread reference.
TEST(ParallelDeterminismKernelTest, ScalarAndBatchedBitIdentical) {
  namespace gk = geometry::kernels;
  const auto data = hdidx::testing::SmallClustered(4000, 12, 31);
  const index::TreeTopology topo(data.size(), 33, 8);
  ASSERT_GE(topo.height(), 3u);

  struct Run {
    std::vector<double> radii;
    std::vector<double> mini_accesses;
    std::vector<double> resampled_accesses;
    std::vector<size_t> sphere_leaf, sphere_dir;
    std::vector<size_t> knn_neighbors;
    std::vector<double> knn_kth;
    uint64_t digest = 0;
  };
  const auto run_once = [&](const common::ExecutionContext& ctx) {
    Run run;
    // Workload creation: KthDistanceScan per query.
    common::Rng wrng(7);
    const workload::QueryWorkload queries =
        workload::QueryWorkload::Create(data, 30, 9, &wrng, ctx);
    for (size_t i = 0; i < queries.num_queries(); ++i) {
      run.radii.push_back(queries.radius(i));
    }

    // Mini-index prediction: CountSphereHits over the leaf slab.
    core::MiniIndexParams mini_params;
    mini_params.sampling_fraction = 0.2;
    mini_params.seed = 17;
    run.mini_accesses =
        core::PredictWithMiniIndex(data, topo, queries, mini_params, ctx)
            .per_query_accesses;

    // Resampled prediction: NearestBox assignment + CountSphereHits.
    io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
    core::ResampledParams res_params;
    res_params.memory_points = 800;
    res_params.h_upper = 2;
    res_params.seed = 9;
    run.resampled_accesses =
        core::PredictWithResampledTree(&file, topo, queries, res_params, ctx)
            .per_query_accesses;

    // Tree traversal (AppendSphereHits over per-node child slabs), k-NN
    // search (KnnPairHeap leaf scans) and the layout digest.
    index::BulkLoadOptions options;
    options.topology = &topo;
    options.exec = &ctx;
    const index::RTree tree = index::BulkLoadInMemory(data, options);
    run.digest = index::TreeLayoutDigest(tree);
    for (size_t i = 0; i < queries.num_queries(); ++i) {
      const auto accesses =
          tree.CountSphereAccesses(queries.queries().row(i), queries.radius(i));
      run.sphere_leaf.push_back(accesses.leaf_accesses);
      run.sphere_dir.push_back(accesses.dir_accesses);
      const auto knn = index::TreeKnnSearch(tree, data, queries.queries().row(i),
                                            /*k=*/5);
      run.knn_neighbors.insert(run.knn_neighbors.end(), knn.neighbors.begin(),
                               knn.neighbors.end());
      run.knn_kth.push_back(knn.kth_distance);
    }
    return run;
  };

  // Every kernel mode the host can run (scalar oracle first, then the
  // generic lanes and each reachable SIMD ISA) crossed with thread counts:
  // all runs, including the TreeLayoutDigest, must be bit-identical.
  std::vector<Run> runs;
  std::vector<std::string> labels;
  for (const gk::KernelMode mode : gk::SupportedKernelModes()) {
    gk::SetKernelMode(mode);
    for (const size_t threads : {1u, 2u, 8u}) {
      common::ThreadPool pool(threads);
      const common::ExecutionContext ctx(&pool);
      runs.push_back(run_once(ctx));
      labels.push_back(std::string(gk::KernelModeName(mode)) + "/" +
                       std::to_string(threads) + "-thread");
    }
  }
  gk::ClearKernelModeOverride();

  for (size_t r = 1; r < runs.size(); ++r) {
    SCOPED_TRACE(labels[r] + " vs scalar/1-thread");
    EXPECT_EQ(runs[r].radii, runs[0].radii);
    EXPECT_EQ(runs[r].mini_accesses, runs[0].mini_accesses);
    EXPECT_EQ(runs[r].resampled_accesses, runs[0].resampled_accesses);
    EXPECT_EQ(runs[r].sphere_leaf, runs[0].sphere_leaf);
    EXPECT_EQ(runs[r].sphere_dir, runs[0].sphere_dir);
    EXPECT_EQ(runs[r].knn_neighbors, runs[0].knn_neighbors);
    EXPECT_EQ(runs[r].knn_kth, runs[0].knn_kth);
    EXPECT_EQ(runs[r].digest, runs[0].digest);
  }
}

}  // namespace
}  // namespace hdidx
