// The parallel execution layer's headline invariant: every library entry
// point that fans out on an ExecutionContext produces bit-identical results
// for every thread count (see src/common/parallel.h for the contract). These
// tests run the refactored paths under explicit 1/2/8-thread pools and
// compare exact bit patterns — EXPECT_EQ on doubles, not EXPECT_NEAR.

#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "core/mini_index.h"
#include "core/predictor.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "test_util.h"
#include "workload/query_workload.h"

namespace hdidx {
namespace {

// Runs `fn(ctx)` under pools of 1, 2 and 8 threads and returns the three
// results for comparison.
template <typename Fn>
auto RunAtThreadCounts(Fn&& fn) {
  using Result = decltype(fn(common::ExecutionContext()));
  std::vector<Result> results;
  for (size_t threads : {1u, 2u, 8u}) {
    common::ThreadPool pool(threads);
    const common::ExecutionContext ctx(&pool);
    results.push_back(fn(ctx));
  }
  return results;
}

TEST(ParallelDeterminismTest, WorkloadCreateBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(2000, 8, 21);
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    common::Rng rng(5);
    return workload::QueryWorkload::Create(data, 40, 7, &rng, ctx);
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].num_queries(), runs[0].num_queries());
    EXPECT_EQ(runs[r].query_rows(), runs[0].query_rows());
    for (size_t i = 0; i < runs[0].num_queries(); ++i) {
      EXPECT_EQ(runs[r].radius(i), runs[0].radius(i)) << "query " << i;
    }
  }
}

TEST(ParallelDeterminismTest, ScanForWorkloadAndSampleBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(1500, 6, 23);
  struct Run {
    workload::ScanResult scan;
    io::IoStats io;
  };
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
    common::Rng rng(6);
    Run run{workload::ScanForWorkloadAndSample(&file, 25, 5, 200, &rng, ctx),
            file.stats()};
    return run;
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    // Simulated I/O accounting stays serial and must be byte-identical.
    EXPECT_EQ(runs[r].io.page_seeks, runs[0].io.page_seeks);
    EXPECT_EQ(runs[r].io.page_transfers, runs[0].io.page_transfers);
    ASSERT_EQ(runs[r].scan.workload.num_queries(),
              runs[0].scan.workload.num_queries());
    for (size_t i = 0; i < runs[0].scan.workload.num_queries(); ++i) {
      EXPECT_EQ(runs[r].scan.workload.radius(i),
                runs[0].scan.workload.radius(i));
    }
    ASSERT_EQ(runs[r].scan.sample.size(), runs[0].scan.sample.size());
    EXPECT_EQ(runs[r].scan.sampling_ratio, runs[0].scan.sampling_ratio);
  }
}

TEST(ParallelDeterminismTest, PredictWithMiniIndexBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(3000, 8, 25);
  const index::TreeTopology topo(data.size(), 33, 16);
  common::Rng wrng(7);
  const workload::QueryWorkload queries =
      workload::QueryWorkload::Create(data, 30, 11, &wrng);
  core::MiniIndexParams params;
  params.sampling_fraction = 0.2;
  params.seed = 17;
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    return core::PredictWithMiniIndex(data, topo, queries, params, ctx);
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].avg_leaf_accesses, runs[0].avg_leaf_accesses);
    EXPECT_EQ(runs[r].per_query_accesses, runs[0].per_query_accesses);
    EXPECT_EQ(runs[r].num_predicted_leaves, runs[0].num_predicted_leaves);
    EXPECT_EQ(runs[r].sigma_upper, runs[0].sigma_upper);
  }
}

TEST(ParallelDeterminismTest, MeasureLeafAccessesBitIdenticalWithIo) {
  const auto data = hdidx::testing::SmallClustered(2500, 6, 27);
  const index::TreeTopology topo(data.size(), 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  common::Rng wrng(9);
  const workload::QueryWorkload queries =
      workload::QueryWorkload::Create(data, 35, 9, &wrng);
  struct Run {
    std::vector<double> accesses;
    io::IoStats io;
  };
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    Run run;
    run.accesses = core::MeasureLeafAccesses(tree, queries, &run.io, ctx);
    return run;
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].accesses, runs[0].accesses);
    EXPECT_EQ(runs[r].io.page_seeks, runs[0].io.page_seeks);
    EXPECT_EQ(runs[r].io.page_transfers, runs[0].io.page_transfers);
  }
}

TEST(ParallelDeterminismTest, CountSphereLeafAccessesBitIdenticalWithIo) {
  const auto data = hdidx::testing::SmallClustered(2000, 5, 29);
  const index::TreeTopology topo(data.size(), 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  common::Rng wrng(13);
  const workload::QueryWorkload queries =
      workload::QueryWorkload::Create(data, 30, 5, &wrng);
  struct Run {
    std::vector<double> accesses;
    io::IoStats io;
  };
  const auto runs = RunAtThreadCounts([&](const common::ExecutionContext& ctx) {
    Run run;
    run.accesses = index::CountSphereLeafAccesses(
        tree, queries.queries(), queries.radii(), &run.io, ctx);
    return run;
  });
  for (size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].accesses, runs[0].accesses);
    EXPECT_EQ(runs[r].io.page_seeks, runs[0].io.page_seeks);
    EXPECT_EQ(runs[r].io.page_transfers, runs[0].io.page_transfers);
  }
}

}  // namespace
}  // namespace hdidx
