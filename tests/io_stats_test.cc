#include "io/io_stats.h"

#include "gtest/gtest.h"
#include "io/disk_model.h"
#include "io/lru_cache.h"

namespace hdidx::io {
namespace {

TEST(IoStatsTest, ConsistentTallyValidatesAndPrices) {
  IoStats stats;
  stats.page_seeks = 3;
  stats.page_transfers = 10;
  stats.Validate();
  const DiskModel disk;
  EXPECT_DOUBLE_EQ(stats.CostSeconds(disk), disk.Seconds(3.0, 10.0));
}

TEST(IoStatsTest, SumPreservesTheAuditInvariant) {
  IoStats a;
  a.page_seeks = 2;
  a.page_transfers = 5;
  IoStats b;
  b.page_seeks = 1;
  b.page_transfers = 4;
  const IoStats sum = a + b;
  sum.Validate();
  EXPECT_EQ(sum.page_seeks, 3u);
  EXPECT_EQ(sum.page_transfers, 9u);
}

// The accounting audit the invariants exist for: a hand-corrupted counter
// (more seeks than pages moved — impossible in a consistent tally) must be
// caught the moment the tally is consumed, not silently priced.
TEST(IoStatsDeathTest, CorruptedCounterIsCaughtAtConsumption) {
  IoStats corrupted;
  corrupted.page_seeks = 5;
  corrupted.page_transfers = 3;
  EXPECT_DEATH(corrupted.CostSeconds(DiskModel{}),
               "inconsistent I/O tally: 5 seeks > 3 transfers");
}

TEST(IoStatsDeathTest, NegativeCountsAreCaughtByTheDiskModel) {
  const DiskModel disk;
  EXPECT_DEATH(disk.Seconds(-1.0, 4.0), "negative I/O counts");
}

// The LRU page cache charges exactly one seek and one transfer per miss, so
// its tally always satisfies the audit — and its occupancy/bookkeeping
// invariants hold through hits, misses, and evictions.
TEST(IoStatsTest, LruCacheTallyStaysConsistent) {
  LruCache cache(2);
  for (const uint64_t page : {1u, 2u, 1u, 3u, 4u, 2u, 1u}) {
    cache.Access(page);
  }
  cache.stats().Validate();
  EXPECT_EQ(cache.stats().page_seeks, cache.stats().page_transfers);
  EXPECT_EQ(cache.hits() + cache.misses(), 7u);
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GE(cache.misses(), cache.evictions() + cache.size());
}

}  // namespace
}  // namespace hdidx::io
