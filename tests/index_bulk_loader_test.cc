#include "index/bulk_loader.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

TEST(BulkLoaderTest, FullTreeInvariants) {
  const auto data = hdidx::testing::SmallClustered(2000, 6, 1);
  const TreeTopology topo(data.size(), 20, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  hdidx::testing::ExpectValidTree(tree, data, 1);
  EXPECT_EQ(tree.root_level(), topo.height());
}

TEST(BulkLoaderTest, LeafCountMatchesTopology) {
  const auto data = hdidx::testing::SmallClustered(3000, 4, 2);
  const TreeTopology topo(data.size(), 25, 8);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  EXPECT_EQ(tree.num_leaves(), topo.NumLeaves());
}

TEST(BulkLoaderTest, LeafCapacityRespected) {
  const auto data = hdidx::testing::SmallClustered(1234, 3, 3);
  const TreeTopology topo(data.size(), 17, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  for (uint32_t id : tree.leaf_ids()) {
    EXPECT_LE(tree.node(id).count, 17u);
    EXPECT_GE(tree.node(id).count, 1u);
  }
}

TEST(BulkLoaderTest, SinglePageDataset) {
  const auto data = hdidx::testing::SmallClustered(15, 3, 4);
  const TreeTopology topo(data.size(), 20, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf());
}

TEST(BulkLoaderTest, MaxVarianceSplitSeparatesBimodalData) {
  // Two tight clusters far apart along dim 1: the top split must separate
  // them, so the two level-1 leaves of a 2-leaf tree have disjoint extents
  // along dim 1.
  common::Rng rng(5);
  data::Dataset data(2);
  for (int i = 0; i < 40; ++i) {
    const float y = (i % 2 == 0) ? 0.0f : 10.0f;
    data.Append(std::vector<float>{
        static_cast<float>(rng.NextDouble()),
        y + 0.01f * static_cast<float>(rng.NextGaussian())});
  }
  const TreeTopology topo(data.size(), 20, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  ASSERT_EQ(tree.num_leaves(), 2u);
  const auto& a = tree.node(tree.leaf_ids()[0]).box;
  const auto& b = tree.node(tree.leaf_ids()[1]).box;
  EXPECT_FALSE(a.Intersects(b));
}

TEST(BulkLoaderTest, UpperTreeStopsAtStopLevel) {
  const auto data = hdidx::testing::SmallClustered(4000, 5, 6);
  const TreeTopology topo(data.size(), 10, 4);  // height 5 for n=4000
  ASSERT_GE(topo.height(), 3u);
  const size_t stop = topo.height() - 1;  // h_upper = 2
  BulkLoadOptions options;
  options.topology = &topo;
  options.stop_level = stop;
  const RTree tree = BulkLoadInMemory(data, options);
  hdidx::testing::ExpectValidTree(tree, data, stop);
  EXPECT_EQ(tree.num_leaves(), topo.NodesAtLevel(stop));
}

TEST(BulkLoaderTest, ScaledBuildReplicatesStructure) {
  // A mini-index on a 10% sample must have the same leaf count as the full
  // index (structural similarity, Section 3.1).
  const auto data = hdidx::testing::SmallClustered(5000, 4, 7);
  const TreeTopology topo(data.size(), 25, 6);

  common::Rng rng(8);
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), 500, &rows);
  const data::Dataset sample = data.Select(rows);

  BulkLoadOptions full;
  full.topology = &topo;
  const RTree full_tree = BulkLoadInMemory(data, full);

  BulkLoadOptions mini;
  mini.topology = &topo;
  mini.scale = 0.1;
  const RTree mini_tree = BulkLoadInMemory(sample, mini);

  EXPECT_EQ(mini_tree.num_leaves(), full_tree.num_leaves());
  EXPECT_EQ(mini_tree.root_level(), full_tree.root_level());
  hdidx::testing::ExpectValidTree(mini_tree, sample, 1);
}

TEST(BulkLoaderTest, SampledLeavesShrink) {
  // Without compensation, the total leaf volume of a mini-index is smaller
  // than the full index's (the effect Theorem 1 corrects).
  const auto data = hdidx::testing::SmallClustered(8000, 4, 9);
  const TreeTopology topo(data.size(), 40, 8);

  BulkLoadOptions full;
  full.topology = &topo;
  const RTree full_tree = BulkLoadInMemory(data, full);

  common::Rng rng(10);
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), 800, &rows);
  BulkLoadOptions mini;
  mini.topology = &topo;
  mini.scale = 0.1;
  const RTree mini_tree = BulkLoadInMemory(data.Select(rows), mini);

  EXPECT_LT(mini_tree.TotalLeafVolume(), full_tree.TotalLeafVolume());
}

TEST(BulkLoaderTest, LowerTreeRootLevelBuild) {
  // Build a subtree rooted below the root level, as the resampled predictor
  // does for lower trees.
  const auto data = hdidx::testing::SmallClustered(150, 3, 11);
  const TreeTopology topo(10000, 10, 4);  // full tree of height 5
  BulkLoadOptions options;
  options.topology = &topo;
  options.root_level = 3;  // lower tree of height 3
  const RTree tree = BulkLoadInMemory(data, options);
  EXPECT_EQ(tree.root_level(), 3u);
  hdidx::testing::ExpectValidTree(tree, data, 1);
  // capacity(2) = 40: 150 points need 4 children under the root.
  EXPECT_EQ(tree.node(tree.root()).children.size(), 4u);
}

TEST(BulkLoaderTest, DeterministicForSameInputs) {
  const auto data = hdidx::testing::SmallClustered(1000, 4, 12);
  const TreeTopology topo(data.size(), 15, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree a = BulkLoadInMemory(data, options);
  const RTree b = BulkLoadInMemory(data, options);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (uint32_t id = 0; id < a.num_nodes(); ++id) {
    EXPECT_TRUE(a.node(id).box == b.node(id).box);
  }
}

// ---------------------------------------------------------------------------
// Build-equivalence battery: for every SplitStrategy, every dataset shape
// (uniform, clustered, all-identical points — the degenerate-partition
// regression case), and thread counts 1/2/4/8, the parallel build must be
// bit-identical to the serial one: same node ids, MBR floats, leaf ranges
// and point permutation. Runs in the TSan CI job.
// ---------------------------------------------------------------------------

data::Dataset AllIdenticalPoints(size_t n, size_t dim) {
  data::Dataset data(dim);
  const std::vector<float> row(dim, 0.5f);
  for (size_t i = 0; i < n; ++i) data.Append(row);
  return data;
}

data::Dataset UniformData(size_t n, size_t dim, uint64_t seed) {
  common::Rng rng(seed);
  return data::GenerateUniform(n, dim, &rng);
}

class BulkLoaderParallelTest : public ::testing::TestWithParam<SplitStrategy> {
 protected:
  static const char* StrategyName(SplitStrategy s) {
    switch (s) {
      case SplitStrategy::kMaxVariance:
        return "max-variance";
      case SplitStrategy::kMaxExtent:
        return "max-extent";
      case SplitStrategy::kRoundRobin:
        return "round-robin";
      case SplitStrategy::kAdaptiveSample:
        return "adaptive-sample";
    }
    return "?";
  }

  void ExpectParallelMatchesSerial(const data::Dataset& data,
                                   const BulkLoadOptions& base,
                                   const char* dataset_name) {
    BulkLoadOptions serial = base;
    serial.exec = nullptr;
    const RTree reference = BulkLoadInMemory(data, serial);
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      common::ThreadPool pool(threads);
      const common::ExecutionContext ctx(&pool);
      BulkLoadOptions parallel = base;
      parallel.exec = &ctx;
      const RTree tree = BulkLoadInMemory(data, parallel);
      const std::string what = std::string(dataset_name) + ", " +
                               StrategyName(base.split_strategy) + ", " +
                               std::to_string(threads) + " threads vs serial";
      hdidx::testing::ExpectTreesIdentical(reference, tree, what.c_str());
    }
  }
};

TEST_P(BulkLoaderParallelTest, UniformDatasetBitIdentical) {
  const auto data = UniformData(3000, 6, 31);
  const TreeTopology topo(data.size(), 18, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  options.split_strategy = GetParam();
  ExpectParallelMatchesSerial(data, options, "uniform");
}

TEST_P(BulkLoaderParallelTest, ClusteredDatasetBitIdentical) {
  const auto data = hdidx::testing::SmallClustered(4000, 8, 32);
  const TreeTopology topo(data.size(), 25, 6);
  BulkLoadOptions options;
  options.topology = &topo;
  options.split_strategy = GetParam();
  ExpectParallelMatchesSerial(data, options, "clustered");
}

TEST_P(BulkLoaderParallelTest, AllIdenticalPointsBitIdentical) {
  // Every coordinate equal: all variances are zero and every partition is
  // degenerate — the case that used to trip the external build (PR 3).
  const auto data = AllIdenticalPoints(1500, 4);
  const TreeTopology topo(data.size(), 10, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  options.split_strategy = GetParam();
  ExpectParallelMatchesSerial(data, options, "all-identical");
}

TEST_P(BulkLoaderParallelTest, UpperTreeAndScaledBuildsBitIdentical) {
  // The predictor-side shapes: a scaled mini build and an upper tree with a
  // raised stop level must also be thread-count invariant.
  const auto data = hdidx::testing::SmallClustered(600, 5, 33);
  const TreeTopology topo(6000, 10, 4);
  BulkLoadOptions mini;
  mini.topology = &topo;
  mini.scale = 0.1;
  mini.split_strategy = GetParam();
  ExpectParallelMatchesSerial(data, mini, "scaled-mini");

  BulkLoadOptions upper = mini;
  upper.root_level = topo.height();
  upper.stop_level = topo.height() - 1;
  ExpectParallelMatchesSerial(data, upper, "upper-tree");
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BulkLoaderParallelTest,
                         ::testing::Values(SplitStrategy::kMaxVariance,
                                           SplitStrategy::kMaxExtent,
                                           SplitStrategy::kRoundRobin,
                                           SplitStrategy::kAdaptiveSample),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case SplitStrategy::kMaxVariance:
                               return "MaxVariance";
                             case SplitStrategy::kMaxExtent:
                               return "MaxExtent";
                             case SplitStrategy::kRoundRobin:
                               return "RoundRobin";
                             case SplitStrategy::kAdaptiveSample:
                               return "AdaptiveSample";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Golden-layout regression fixtures: the exact layout digests of two
// fixed-seed builds, pinned so a future refactor of either bulk loader
// cannot silently reshuffle layouts. The values hash MBR float bits and are
// tied to this toolchain's std::nth_element tie-breaking (libstdc++); a
// *deliberate* layout change must update them — the failure message prints
// the new digest.
// ---------------------------------------------------------------------------

constexpr uint64_t kGoldenClustered2000x8 = 0x7eaca0ccb0b59c03ULL;
constexpr uint64_t kGoldenUniform3000x12 = 0xb08f52526c3c6bfcULL;

void ExpectGoldenDigest(const data::Dataset& data, const TreeTopology& topo,
                        uint64_t golden) {
  BulkLoadOptions serial;
  serial.topology = &topo;
  const RTree reference = BulkLoadInMemory(data, serial);
  EXPECT_EQ(TreeLayoutDigest(reference), golden)
      << "serial layout changed; new digest 0x" << std::hex
      << TreeLayoutDigest(reference);

  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool);
  BulkLoadOptions parallel = serial;
  parallel.exec = &ctx;
  const RTree tree = BulkLoadInMemory(data, parallel);
  EXPECT_EQ(TreeLayoutDigest(tree), golden)
      << "parallel layout diverged; digest 0x" << std::hex
      << TreeLayoutDigest(tree);
}

TEST(BulkLoaderGoldenLayoutTest, Clustered2000x8) {
  const auto data = hdidx::testing::SmallClustered(2000, 8, 42);
  const TreeTopology topo(data.size(), 20, 5);
  ExpectGoldenDigest(data, topo, kGoldenClustered2000x8);
}

TEST(BulkLoaderGoldenLayoutTest, Uniform3000x12) {
  const auto data = UniformData(3000, 12, 43);
  const TreeTopology topo(data.size(), 33, 16);
  ExpectGoldenDigest(data, topo, kGoldenUniform3000x12);
}

TEST(BulkLoaderTest, TinyScaleClampsToOnePointPerPage) {
  // scale so small that scaled capacity < 1: pages hold >= 1 point and the
  // build still covers everything.
  const auto data = hdidx::testing::SmallClustered(50, 3, 13);
  const TreeTopology topo(50000, 20, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  options.scale = 0.001;
  const RTree tree = BulkLoadInMemory(data, options);
  hdidx::testing::ExpectValidTree(tree, data, 1);
}

}  // namespace
}  // namespace hdidx::index
