#include "index/bulk_loader.h"

#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

TEST(BulkLoaderTest, FullTreeInvariants) {
  const auto data = hdidx::testing::SmallClustered(2000, 6, 1);
  const TreeTopology topo(data.size(), 20, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  hdidx::testing::ExpectValidTree(tree, data, 1);
  EXPECT_EQ(tree.root_level(), topo.height());
}

TEST(BulkLoaderTest, LeafCountMatchesTopology) {
  const auto data = hdidx::testing::SmallClustered(3000, 4, 2);
  const TreeTopology topo(data.size(), 25, 8);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  EXPECT_EQ(tree.num_leaves(), topo.NumLeaves());
}

TEST(BulkLoaderTest, LeafCapacityRespected) {
  const auto data = hdidx::testing::SmallClustered(1234, 3, 3);
  const TreeTopology topo(data.size(), 17, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  for (uint32_t id : tree.leaf_ids()) {
    EXPECT_LE(tree.node(id).count, 17u);
    EXPECT_GE(tree.node(id).count, 1u);
  }
}

TEST(BulkLoaderTest, SinglePageDataset) {
  const auto data = hdidx::testing::SmallClustered(15, 3, 4);
  const TreeTopology topo(data.size(), 20, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf());
}

TEST(BulkLoaderTest, MaxVarianceSplitSeparatesBimodalData) {
  // Two tight clusters far apart along dim 1: the top split must separate
  // them, so the two level-1 leaves of a 2-leaf tree have disjoint extents
  // along dim 1.
  common::Rng rng(5);
  data::Dataset data(2);
  for (int i = 0; i < 40; ++i) {
    const float y = (i % 2 == 0) ? 0.0f : 10.0f;
    data.Append(std::vector<float>{
        static_cast<float>(rng.NextDouble()),
        y + 0.01f * static_cast<float>(rng.NextGaussian())});
  }
  const TreeTopology topo(data.size(), 20, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  ASSERT_EQ(tree.num_leaves(), 2u);
  const auto& a = tree.node(tree.leaf_ids()[0]).box;
  const auto& b = tree.node(tree.leaf_ids()[1]).box;
  EXPECT_FALSE(a.Intersects(b));
}

TEST(BulkLoaderTest, UpperTreeStopsAtStopLevel) {
  const auto data = hdidx::testing::SmallClustered(4000, 5, 6);
  const TreeTopology topo(data.size(), 10, 4);  // height 5 for n=4000
  ASSERT_GE(topo.height(), 3u);
  const size_t stop = topo.height() - 1;  // h_upper = 2
  BulkLoadOptions options;
  options.topology = &topo;
  options.stop_level = stop;
  const RTree tree = BulkLoadInMemory(data, options);
  hdidx::testing::ExpectValidTree(tree, data, stop);
  EXPECT_EQ(tree.num_leaves(), topo.NodesAtLevel(stop));
}

TEST(BulkLoaderTest, ScaledBuildReplicatesStructure) {
  // A mini-index on a 10% sample must have the same leaf count as the full
  // index (structural similarity, Section 3.1).
  const auto data = hdidx::testing::SmallClustered(5000, 4, 7);
  const TreeTopology topo(data.size(), 25, 6);

  common::Rng rng(8);
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), 500, &rows);
  const data::Dataset sample = data.Select(rows);

  BulkLoadOptions full;
  full.topology = &topo;
  const RTree full_tree = BulkLoadInMemory(data, full);

  BulkLoadOptions mini;
  mini.topology = &topo;
  mini.scale = 0.1;
  const RTree mini_tree = BulkLoadInMemory(sample, mini);

  EXPECT_EQ(mini_tree.num_leaves(), full_tree.num_leaves());
  EXPECT_EQ(mini_tree.root_level(), full_tree.root_level());
  hdidx::testing::ExpectValidTree(mini_tree, sample, 1);
}

TEST(BulkLoaderTest, SampledLeavesShrink) {
  // Without compensation, the total leaf volume of a mini-index is smaller
  // than the full index's (the effect Theorem 1 corrects).
  const auto data = hdidx::testing::SmallClustered(8000, 4, 9);
  const TreeTopology topo(data.size(), 40, 8);

  BulkLoadOptions full;
  full.topology = &topo;
  const RTree full_tree = BulkLoadInMemory(data, full);

  common::Rng rng(10);
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), 800, &rows);
  BulkLoadOptions mini;
  mini.topology = &topo;
  mini.scale = 0.1;
  const RTree mini_tree = BulkLoadInMemory(data.Select(rows), mini);

  EXPECT_LT(mini_tree.TotalLeafVolume(), full_tree.TotalLeafVolume());
}

TEST(BulkLoaderTest, LowerTreeRootLevelBuild) {
  // Build a subtree rooted below the root level, as the resampled predictor
  // does for lower trees.
  const auto data = hdidx::testing::SmallClustered(150, 3, 11);
  const TreeTopology topo(10000, 10, 4);  // full tree of height 5
  BulkLoadOptions options;
  options.topology = &topo;
  options.root_level = 3;  // lower tree of height 3
  const RTree tree = BulkLoadInMemory(data, options);
  EXPECT_EQ(tree.root_level(), 3u);
  hdidx::testing::ExpectValidTree(tree, data, 1);
  // capacity(2) = 40: 150 points need 4 children under the root.
  EXPECT_EQ(tree.node(tree.root()).children.size(), 4u);
}

TEST(BulkLoaderTest, DeterministicForSameInputs) {
  const auto data = hdidx::testing::SmallClustered(1000, 4, 12);
  const TreeTopology topo(data.size(), 15, 4);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree a = BulkLoadInMemory(data, options);
  const RTree b = BulkLoadInMemory(data, options);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (uint32_t id = 0; id < a.num_nodes(); ++id) {
    EXPECT_TRUE(a.node(id).box == b.node(id).box);
  }
}

TEST(BulkLoaderTest, TinyScaleClampsToOnePointPerPage) {
  // scale so small that scaled capacity < 1: pages hold >= 1 point and the
  // build still covers everything.
  const auto data = hdidx::testing::SmallClustered(50, 3, 13);
  const TreeTopology topo(50000, 20, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  options.scale = 0.001;
  const RTree tree = BulkLoadInMemory(data, options);
  hdidx::testing::ExpectValidTree(tree, data, 1);
}

}  // namespace
}  // namespace hdidx::index
