#include "core/dynamic_mini_index.h"

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/stats.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/rstar.h"
#include "test_util.h"
#include "workload/query_workload.h"

namespace hdidx::core {
namespace {

class DynamicPredictionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(12000, 6, 21);
    options_.max_data_entries = 40;
    options_.max_dir_entries = 10;
    common::Rng wrng(22);
    workload_ = std::make_unique<workload::QueryWorkload>(
        workload::QueryWorkload::Create(data_, 30, 8, &wrng));

    const index::RTree tree =
        index::RStarTree::BuildByInsertion(data_, options_).ToRTree();
    num_real_leaves_ = tree.num_leaves();
    measured_ = common::Mean(MeasureLeafAccesses(tree, *workload_, nullptr));
  }

  data::Dataset data_{1};
  index::RStarTree::Options options_;
  std::unique_ptr<workload::QueryWorkload> workload_;
  double measured_ = 0.0;
  size_t num_real_leaves_ = 0;
};

TEST_F(DynamicPredictionTest, FullSampleCloseToMeasurement) {
  DynamicMiniIndexParams params;
  params.sampling_fraction = 1.0;
  const PredictionResult result =
      PredictDynamicRStar(data_, options_, *workload_, params);
  // zeta = 1: the mini index IS an R*-tree on the full data. Insertion
  // order matches, so this reproduces the measurement exactly.
  EXPECT_NEAR(result.avg_leaf_accesses, measured_, 1e-9);
}

TEST_F(DynamicPredictionTest, SampledPredictionTracksMeasurement) {
  DynamicMiniIndexParams params;
  params.sampling_fraction = 0.3;
  const PredictionResult result =
      PredictDynamicRStar(data_, options_, *workload_, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_);
  // Dynamic trees lack the bulk loader's exact structural-similarity
  // guarantee (capacity rounding), so the band is wider than Table 3's.
  EXPECT_LT(std::abs(rel), 0.4) << "relative error " << rel;
}

TEST_F(DynamicPredictionTest, CompensationImprovesAccuracy) {
  DynamicMiniIndexParams with, without;
  with.sampling_fraction = without.sampling_fraction = 0.25;
  without.compensate = false;
  const double pred_with =
      PredictDynamicRStar(data_, options_, *workload_, with)
          .avg_leaf_accesses;
  const double pred_without =
      PredictDynamicRStar(data_, options_, *workload_, without)
          .avg_leaf_accesses;
  EXPECT_LT(pred_without, pred_with);  // shrunken pages hit fewer regions
}

TEST_F(DynamicPredictionTest, LeafCountInRightBallpark) {
  DynamicMiniIndexParams params;
  params.sampling_fraction = 0.3;
  const PredictionResult result =
      PredictDynamicRStar(data_, options_, *workload_, params);
  EXPECT_GT(result.num_predicted_leaves, num_real_leaves_ / 2);
  EXPECT_LT(result.num_predicted_leaves, num_real_leaves_ * 2);
}

TEST_F(DynamicPredictionTest, DeterministicPerSeed) {
  DynamicMiniIndexParams params;
  params.sampling_fraction = 0.2;
  params.seed = 77;
  const auto a = PredictDynamicRStar(data_, options_, *workload_, params);
  const auto b = PredictDynamicRStar(data_, options_, *workload_, params);
  EXPECT_EQ(a.avg_leaf_accesses, b.avg_leaf_accesses);
}

}  // namespace
}  // namespace hdidx::core
