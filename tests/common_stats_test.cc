#include "common/stats.h"

#include <cmath>

#include "gtest/gtest.h"

namespace hdidx::common {
namespace {

TEST(FitLineTest, RecoversExactLine) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {1, 3, 5, 7, 9};  // y = 2x + 1
  const LineFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(FitLineTest, NegativeSlopeAndCorrelation) {
  std::vector<double> x = {0, 1, 2, 3};
  std::vector<double> y = {6, 4, 2, 0};
  const LineFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.r, -1.0, 1e-12);
}

TEST(FitLineTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).slope, 0.0);
  EXPECT_EQ(FitLine({1.0}, {2.0}).slope, 0.0);
  // Vertical data (constant x) cannot be fit.
  const LineFit fit = FitLine({3, 3, 3}, {1, 2, 3});
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(FitLineTest, NoisyLineSlopeClose) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const LineFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 1e-3);
  EXPECT_GT(fit.r, 0.999);
}

TEST(StatsTest, MeanAndVariance) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_NEAR(Mean({2, 4, 6}), 4.0, 1e-12);
  EXPECT_EQ(Variance({5.0}), 0.0);
  EXPECT_NEAR(Variance({1, 3}), 1.0, 1e-12);  // population variance
  EXPECT_NEAR(Variance({2, 2, 2, 2}), 0.0, 1e-12);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  // Uncorrelated-by-construction: symmetric y over monotone x.
  EXPECT_NEAR(PearsonCorrelation({-1, 0, 1}, {1, 0, 1}), 0.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolatesOrderStatistics) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Percentile({7.0}, 1.0), 7.0);
  // {1..5}: p0=1, p50=3, p100=5, p25 halfway between 2 and 3.
  const std::vector<double> v = {5, 1, 4, 2, 3};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 0.5), 1.5);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(Percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 2.0), 5.0);
  // p90 of ten latencies: between the 9th and 10th order statistic.
  std::vector<double> ten;
  for (int i = 1; i <= 10; ++i) ten.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(ten, 0.9), 9.1);
}

TEST(StatsTest, RelativeErrorSignConvention) {
  // Positive = overestimation, negative = underestimation (paper Table 3).
  EXPECT_NEAR(RelativeError(110, 100), 0.10, 1e-12);
  EXPECT_NEAR(RelativeError(68, 100), -0.32, 1e-12);
  EXPECT_EQ(RelativeError(5, 0), 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  const std::vector<double> v = {1.5, -2.0, 3.25, 0.0, 7.5, -1.25};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-12);
}

TEST(RunningStatsTest, SingleObservationHasZeroVariance) {
  RunningStats rs;
  rs.Add(42.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.mean(), 42.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose precision at offset 1e9.
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.Add(1e9 + (i % 2));
  EXPECT_NEAR(rs.variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace hdidx::common
