#include "index/rtree.h"

#include <vector>

#include "gtest/gtest.h"

namespace hdidx::index {
namespace {

/// Hand-built 2-level tree over the unit square:
///   leaves: [0,0.4]x[0,1] and [0.6,1]x[0,1] under one root.
RTree MakeTwoLeafTree() {
  RTree tree(2);
  const uint32_t a =
      tree.AddLeaf(geometry::BoundingBox({0, 0}, {0.4f, 1}), 1, 0, 10);
  const uint32_t b =
      tree.AddLeaf(geometry::BoundingBox({0.6f, 0}, {1, 1}), 1, 10, 10);
  const uint32_t root = tree.AddDirectory(2, {a, b});
  tree.SetRoot(root);
  return tree;
}

TEST(RTreeTest, ConstructionBasics) {
  const RTree tree = MakeTwoLeafTree();
  EXPECT_EQ(tree.num_nodes(), 3u);
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_EQ(tree.root_level(), 2u);
  // Directory box is the union of children.
  const auto& root_box = tree.node(tree.root()).box;
  EXPECT_EQ(root_box.lo(), (std::vector<float>{0, 0}));
  EXPECT_EQ(root_box.hi(), (std::vector<float>{1, 1}));
}

TEST(RTreeTest, OrderedIndexIdentityWhenUnset) {
  const RTree tree = MakeTwoLeafTree();
  EXPECT_EQ(tree.OrderedIndex(5), 5u);
}

TEST(RTreeTest, OrderedIndexFollowsPermutation) {
  RTree tree = MakeTwoLeafTree();
  std::vector<uint32_t> order(20);
  for (uint32_t i = 0; i < 20; ++i) order[i] = 19 - i;
  tree.SetOrder(order);
  EXPECT_EQ(tree.OrderedIndex(0), 19u);
  EXPECT_EQ(tree.OrderedIndex(19), 0u);
}

TEST(RTreeTest, SphereAccessesBothLeaves) {
  const RTree tree = MakeTwoLeafTree();
  // Sphere in the middle reaching both leaves.
  const std::vector<float> center = {0.5f, 0.5f};
  const auto count = tree.CountSphereAccesses(center, 0.2);
  EXPECT_EQ(count.leaf_accesses, 2u);
  EXPECT_EQ(count.dir_accesses, 1u);
}

TEST(RTreeTest, SphereAccessesOneLeaf) {
  const RTree tree = MakeTwoLeafTree();
  const std::vector<float> center = {0.1f, 0.5f};
  const auto count = tree.CountSphereAccesses(center, 0.1);
  EXPECT_EQ(count.leaf_accesses, 1u);
}

TEST(RTreeTest, SphereInGapTouchesNothingButRoot) {
  const RTree tree = MakeTwoLeafTree();
  const std::vector<float> center = {0.5f, 0.5f};
  const auto count = tree.CountSphereAccesses(center, 0.05);
  EXPECT_EQ(count.leaf_accesses, 0u);
  EXPECT_EQ(count.dir_accesses, 1u);  // root always read
}

TEST(RTreeTest, SphereOutsideEverythingReadsRootOnly) {
  const RTree tree = MakeTwoLeafTree();
  const std::vector<float> center = {5, 5};
  const auto count = tree.CountSphereAccesses(center, 0.1);
  EXPECT_EQ(count.leaf_accesses, 0u);
  EXPECT_EQ(count.dir_accesses, 1u);
}

TEST(RTreeTest, SingleLeafTreeAlwaysReadsThatPage) {
  RTree tree(2);
  const uint32_t leaf =
      tree.AddLeaf(geometry::BoundingBox({0, 0}, {1, 1}), 1, 0, 5);
  tree.SetRoot(leaf);
  const auto count =
      tree.CountSphereAccesses(std::vector<float>{9, 9}, 0.001);
  EXPECT_EQ(count.leaf_accesses, 1u);
  EXPECT_EQ(count.dir_accesses, 0u);
}

TEST(RTreeTest, BoxAccessCounts) {
  const RTree tree = MakeTwoLeafTree();
  EXPECT_EQ(tree.CountBoxAccesses(geometry::BoundingBox({0, 0}, {1, 1})), 2u);
  EXPECT_EQ(
      tree.CountBoxAccesses(geometry::BoundingBox({0, 0}, {0.3f, 0.3f})), 1u);
  EXPECT_EQ(tree.CountBoxAccesses(
                geometry::BoundingBox({0.45f, 0}, {0.55f, 1})),
            0u);
}

TEST(RTreeTest, TotalLeafVolume) {
  const RTree tree = MakeTwoLeafTree();
  EXPECT_NEAR(tree.TotalLeafVolume(), 0.4 + 0.4, 1e-6);
}

TEST(RTreeTest, ThreeLevelTraversalPrunes) {
  RTree tree(1);
  const uint32_t l1 = tree.AddLeaf(geometry::BoundingBox({0}, {1}), 1, 0, 2);
  const uint32_t l2 = tree.AddLeaf(geometry::BoundingBox({2}, {3}), 1, 2, 2);
  const uint32_t l3 = tree.AddLeaf(geometry::BoundingBox({8}, {9}), 1, 4, 2);
  const uint32_t d1 = tree.AddDirectory(2, {l1, l2});
  const uint32_t d2 = tree.AddDirectory(2, {l3});
  const uint32_t root = tree.AddDirectory(3, {d1, d2});
  tree.SetRoot(root);

  // Query near the left group: must not read d2 or l3.
  const auto count = tree.CountSphereAccesses(std::vector<float>{1.5f}, 0.6);
  EXPECT_EQ(count.leaf_accesses, 2u);
  EXPECT_EQ(count.dir_accesses, 2u);  // root + d1
}

}  // namespace
}  // namespace hdidx::index
