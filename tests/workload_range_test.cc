#include "workload/range_workload.h"

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "core/hupper.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::workload {
namespace {

TEST(RangeWorkloadTest, BoxesCenteredOnDataPoints) {
  const auto data = hdidx::testing::SmallClustered(500, 3, 1);
  common::Rng rng(2);
  const RangeWorkload w =
      RangeWorkload::Create(data, 10, {0.1f, 0.2f, 0.3f}, &rng);
  ASSERT_EQ(w.size(), 10u);
  for (size_t i = 0; i < w.size(); ++i) {
    const auto center = data.row(w.query_rows()[i]);
    EXPECT_NEAR(w.box(i).Center(0), center[0], 1e-5);
    EXPECT_FLOAT_EQ(w.box(i).Extent(0), 0.2f);
    EXPECT_FLOAT_EQ(w.box(i).Extent(2), 0.6f);
    EXPECT_TRUE(w.box(i).Contains(center));
  }
}

TEST(RangeWorkloadTest, IntersectsMatchesBoxGeometry) {
  data::Dataset data(2);
  data.Append(std::vector<float>{0.5f, 0.5f});
  common::Rng rng(3);
  const RangeWorkload w = RangeWorkload::Create(data, 1, {0.1f, 0.1f}, &rng);
  EXPECT_TRUE(w.Intersects(0, geometry::BoundingBox({0, 0}, {0.45f, 0.45f})));
  EXPECT_FALSE(w.Intersects(0, geometry::BoundingBox({0, 0}, {0.3f, 0.3f})));
}

TEST(RangeWorkloadTest, CardinalityTargetedBoxesContainTarget) {
  const auto data = hdidx::testing::SmallClustered(2000, 4, 4);
  common::Rng rng(5);
  const size_t target = 50;
  const RangeWorkload w =
      RangeWorkload::CreateWithCardinality(data, 8, target, &rng);
  for (size_t i = 0; i < w.size(); ++i) {
    size_t inside = 0;
    for (size_t j = 0; j < data.size(); ++j) {
      if (w.box(i).Contains(data.row(j))) ++inside;
    }
    // At least the target (ties can add a few more).
    EXPECT_GE(inside, target);
    EXPECT_LE(inside, target + 20);
  }
}

TEST(RangeWorkloadTest, DenserRegionsGetMoreQueries) {
  common::Rng gen(6);
  data::Dataset data(1);
  for (int i = 0; i < 900; ++i) data.Append(std::vector<float>{0.0f});
  for (int i = 0; i < 100; ++i) data.Append(std::vector<float>{10.0f});
  common::Rng rng(7);
  const RangeWorkload w = RangeWorkload::Create(data, 300, {0.5f}, &rng);
  size_t near_zero = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (w.box(i).Center(0) < 5.0f) ++near_zero;
  }
  EXPECT_NEAR(static_cast<double>(near_zero) / 300.0, 0.9, 0.07);
}

TEST(RangePredictionTest, MiniIndexPredictsRangeQueries) {
  // The paper's Section 1 claim: the technique applies to range queries.
  // Prediction against the QueryRegions interface must track measurement.
  const auto data = hdidx::testing::SmallClustered(15000, 6, 8);
  const index::TreeTopology topo(data.size(), 60, 8);
  common::Rng rng(9);
  const RangeWorkload w =
      RangeWorkload::CreateWithCardinality(data, 30, 40, &rng);

  index::BulkLoadOptions full;
  full.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, full);
  const std::vector<double> measured =
      core::MeasureLeafAccesses(tree, w, nullptr);
  const double measured_avg = common::Mean(measured);
  ASSERT_GT(measured_avg, 0.0);

  core::MiniIndexParams params;
  params.sampling_fraction = 0.25;
  const core::PredictionResult result =
      core::PredictWithMiniIndex(data, topo, w, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_avg);
  EXPECT_LT(std::abs(rel), 0.3) << "relative error " << rel;
}

TEST(RangePredictionTest, ResampledPredictsRangeQueries) {
  const auto data = hdidx::testing::SmallClustered(20000, 6, 10);
  const index::TreeTopology topo(data.size(), 40, 8);
  ASSERT_GE(topo.height(), 3u);
  common::Rng rng(11);
  const RangeWorkload w =
      RangeWorkload::CreateWithCardinality(data, 25, 60, &rng);

  index::BulkLoadOptions full;
  full.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, full);
  const double measured_avg =
      common::Mean(core::MeasureLeafAccesses(tree, w, nullptr));

  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  core::ResampledParams params;
  params.memory_points = 3000;
  params.h_upper = core::ChooseHupper(topo, params.memory_points);
  const core::PredictionResult result =
      core::PredictWithResampledTree(&file, topo, w, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_avg);
  EXPECT_LT(std::abs(rel), 0.3) << "relative error " << rel;
}

TEST(RangePredictionTest, MeasureLeafAccessesMatchesSphereCounting) {
  // For a sphere workload, the generic region measurement must equal the
  // sphere-specific counter.
  const auto data = hdidx::testing::SmallClustered(3000, 5, 12);
  const index::TreeTopology topo(data.size(), 25, 6);
  index::BulkLoadOptions full;
  full.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, full);
  common::Rng rng(13);
  const QueryWorkload w = QueryWorkload::Create(data, 15, 5, &rng);
  const auto generic = core::MeasureLeafAccesses(tree, w, nullptr);
  const auto sphere = index::CountSphereLeafAccesses(
      tree, w.queries(), w.radii(), nullptr);
  EXPECT_EQ(generic, sphere);
}

}  // namespace
}  // namespace hdidx::workload
