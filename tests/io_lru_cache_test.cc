#include "io/lru_cache.h"

#include <memory>
#include <string>
#include <tuple>

#include "gtest/gtest.h"
#include "io/keyed_lru_cache.h"

namespace hdidx::io {
namespace {

TEST(LruCacheTest, ColdAccessesMiss) {
  LruCache cache(4);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.stats().page_seeks, 2u);
  EXPECT_EQ(cache.stats().page_transfers, 2u);
}

TEST(LruCacheTest, RepeatAccessHits) {
  LruCache cache(4);
  cache.Access(7);
  EXPECT_TRUE(cache.Access(7));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.stats().page_seeks, 1u);  // only the miss charged
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);  // 1 is now most recent
  cache.Access(3);  // evicts 2
  EXPECT_TRUE(cache.Access(1));
  EXPECT_TRUE(cache.Access(3));
  EXPECT_FALSE(cache.Access(2));  // was evicted
}

TEST(LruCacheTest, ZeroCapacityNeverHits) {
  LruCache cache(0);
  cache.Access(5);
  EXPECT_FALSE(cache.Access(5));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, SizeBoundedByCapacity) {
  LruCache cache(3);
  for (uint64_t p = 0; p < 100; ++p) cache.Access(p);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.misses(), 100u);
}

TEST(LruCacheTest, HitRateAndClear) {
  LruCache cache(8);
  for (int round = 0; round < 4; ++round) {
    for (uint64_t p = 0; p < 8; ++p) cache.Access(p);
  }
  // 8 cold misses, 24 hits.
  EXPECT_DOUBLE_EQ(cache.HitRate(), 24.0 / 32.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
}

TEST(LruCacheTest, ScanPatternThrashesSmallCache) {
  // Classic LRU pathology: a cyclic scan one page larger than the cache
  // never hits.
  LruCache cache(4);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t p = 0; p < 5; ++p) cache.Access(p);
  }
  EXPECT_EQ(cache.hits(), 0u);
  // Every miss after the first 4 evicted something.
  EXPECT_EQ(cache.evictions(), cache.misses() - 4);
}

TEST(LruCacheTest, EvictionCounterTracksRepeatedTouchOrder) {
  // Repeated touches must refresh recency: after touching 1 and 2 again,
  // inserting 4 and 5 evicts 3 first (the stalest), then 1.
  LruCache cache(3);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);
  cache.Access(2);  // order (MRU->LRU): 2, 3, 1
  cache.Access(1);  // order: 1, 2, 3
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Access(4);  // evicts 3
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Access(1));
  EXPECT_TRUE(cache.Access(2));
  EXPECT_FALSE(cache.Access(3));  // was evicted (this miss evicts 4)
  EXPECT_EQ(cache.evictions(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.evictions(), 0u);
}

// --- KeyedLruCache: the generalization the prediction service caches
// mini-indexes and workloads in. ---

using StringCache = KeyedLruCache<std::string, int>;

std::shared_ptr<const int> Value(int v) {
  return std::make_shared<const int>(v);
}

TEST(KeyedLruCacheTest, GetPutCountersAndHitRate) {
  StringCache cache(2);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", Value(1));
  const auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(KeyedLruCacheTest, EvictionOrderIsLruUnderRepeatedTouches) {
  StringCache cache(3);
  cache.Put("a", Value(1));
  cache.Put("b", Value(2));
  cache.Put("c", Value(3));
  // Touch pattern a, c, a: LRU order (stalest first) is now b, c, a.
  cache.Get("a");
  cache.Get("c");
  cache.Get("a");
  cache.Put("d", Value(4));  // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("c"), nullptr);
  // Recency (most recent first) is now c, d, a — so inserting evicts a.
  cache.Put("e", Value(5));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(KeyedLruCacheTest, EvictedValueSurvivesThroughSharedPtr) {
  StringCache cache(1);
  cache.Put("a", Value(7));
  const auto held = cache.Get("a");
  cache.Put("b", Value(8));  // evicts "a" from the cache
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(held, nullptr);  // but the caller's handle stays valid
  EXPECT_EQ(*held, 7);
}

TEST(KeyedLruCacheTest, PutRefreshesExistingKeyWithoutEviction) {
  StringCache cache(2);
  cache.Put("a", Value(1));
  cache.Put("b", Value(2));
  cache.Put("a", Value(3));  // refresh, no growth
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.Get("a"), 3);
  cache.Put("c", Value(4));  // evicts b (a was refreshed more recently)
  EXPECT_EQ(cache.Get("b"), nullptr);
  ASSERT_NE(cache.Get("a"), nullptr);
}

TEST(KeyedLruCacheTest, ZeroCapacityNeverStores) {
  StringCache cache(0);
  cache.Put("a", Value(1));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(KeyedLruCacheTest, TupleKeysWork) {
  // The service keys caches by (dataset, method, memory, ...) tuples.
  using Key = std::tuple<std::string, std::string, size_t, uint64_t>;
  KeyedLruCache<Key, double> cache(4);
  const Key k1{"d1", "resampled", 1000, 7};
  const Key k2{"d1", "resampled", 1000, 8};
  cache.Put(k1, std::make_shared<const double>(1.5));
  ASSERT_NE(cache.Get(k1), nullptr);
  EXPECT_EQ(cache.Get(k2), nullptr);
}

}  // namespace
}  // namespace hdidx::io
