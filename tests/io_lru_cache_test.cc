#include "io/lru_cache.h"

#include "gtest/gtest.h"

namespace hdidx::io {
namespace {

TEST(LruCacheTest, ColdAccessesMiss) {
  LruCache cache(4);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.stats().page_seeks, 2u);
  EXPECT_EQ(cache.stats().page_transfers, 2u);
}

TEST(LruCacheTest, RepeatAccessHits) {
  LruCache cache(4);
  cache.Access(7);
  EXPECT_TRUE(cache.Access(7));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.stats().page_seeks, 1u);  // only the miss charged
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);  // 1 is now most recent
  cache.Access(3);  // evicts 2
  EXPECT_TRUE(cache.Access(1));
  EXPECT_TRUE(cache.Access(3));
  EXPECT_FALSE(cache.Access(2));  // was evicted
}

TEST(LruCacheTest, ZeroCapacityNeverHits) {
  LruCache cache(0);
  cache.Access(5);
  EXPECT_FALSE(cache.Access(5));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, SizeBoundedByCapacity) {
  LruCache cache(3);
  for (uint64_t p = 0; p < 100; ++p) cache.Access(p);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.misses(), 100u);
}

TEST(LruCacheTest, HitRateAndClear) {
  LruCache cache(8);
  for (int round = 0; round < 4; ++round) {
    for (uint64_t p = 0; p < 8; ++p) cache.Access(p);
  }
  // 8 cold misses, 24 hits.
  EXPECT_DOUBLE_EQ(cache.HitRate(), 24.0 / 32.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
}

TEST(LruCacheTest, ScanPatternThrashesSmallCache) {
  // Classic LRU pathology: a cyclic scan one page larger than the cache
  // never hits.
  LruCache cache(4);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t p = 0; p < 5; ++p) cache.Access(p);
  }
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace hdidx::io
