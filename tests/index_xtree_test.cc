#include <cmath>
#include <memory>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/knn.h"
#include "index/rstar.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

RStarTree::Options XtreeOptions() {
  RStarTree::Options options;
  options.max_data_entries = 16;
  options.max_dir_entries = 6;
  options.supernode_overlap_threshold = 0.2;  // the X-tree's MAX_OVERLAP
  return options;
}

TEST(XTreeTest, InvariantsHoldWithSupernodes) {
  // High-dimensional clustered data provokes heavily overlapping directory
  // splits — the X-tree's supernode trigger.
  const auto data = hdidx::testing::SmallClustered(2500, 16, 61);
  const RStarTree tree = RStarTree::BuildByInsertion(data, XtreeOptions());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 2500u);
}

TEST(XTreeTest, SupernodesAppearInHighDimensions) {
  const auto data = hdidx::testing::SmallClustered(2500, 16, 62);
  const RStarTree xtree = RStarTree::BuildByInsertion(data, XtreeOptions());
  EXPECT_GT(xtree.CountSupernodes(), 0u)
      << "16-d clustered data should trigger supernodes";

  // Plain R* on the same data has none.
  RStarTree::Options plain = XtreeOptions();
  plain.supernode_overlap_threshold = -1.0;
  const RStarTree rstar = RStarTree::BuildByInsertion(data, plain);
  EXPECT_EQ(rstar.CountSupernodes(), 0u);
}

TEST(XTreeTest, LowDimensionalDataRarelyNeedsSupernodes) {
  common::Rng rng(63);
  const auto data = data::GenerateUniform(2500, 2, &rng);
  const RStarTree tree = RStarTree::BuildByInsertion(data, XtreeOptions());
  // 2-d uniform splits fairly cleanly: far fewer supernodes than high-d.
  EXPECT_LE(tree.CountSupernodes(), 4u);
}

TEST(XTreeTest, SnapshotChargesSupernodePages) {
  const auto data = hdidx::testing::SmallClustered(2500, 16, 64);
  const RStarTree xtree = RStarTree::BuildByInsertion(data, XtreeOptions());
  ASSERT_GT(xtree.CountSupernodes(), 0u);
  const RTree tree = xtree.ToRTree();
  // At least one directory node spans multiple pages, and its page count
  // covers its fanout.
  size_t multi_page = 0;
  for (uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& node = tree.node(id);
    if (!node.is_leaf() && node.pages > 1) {
      ++multi_page;
      EXPECT_GE(node.pages * XtreeOptions().max_dir_entries,
                node.children.size());
    }
  }
  EXPECT_EQ(multi_page, xtree.CountSupernodes());
}

TEST(XTreeTest, SearchStaysExact) {
  const auto data = hdidx::testing::SmallClustered(2000, 16, 65);
  const RTree tree =
      RStarTree::BuildByInsertion(data, XtreeOptions()).ToRTree();
  hdidx::testing::ExpectValidTree(tree, data, 1);
  common::Rng rng(66);
  for (int trial = 0; trial < 8; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto result = TreeKnnSearch(tree, data, query, 5);
    EXPECT_NEAR(result.kth_distance,
                ExactKthDistance(data, query, 5, -1.0), 1e-9);
  }
}

TEST(XTreeTest, SupernodesReduceDirectoryAccesses) {
  // The X-tree's point: one wide supernode page-run beats two maximally
  // overlapping directory nodes that both match every query. Compare
  // total page accesses per query.
  const auto data = hdidx::testing::SmallClustered(2500, 16, 67);
  const RTree xtree =
      RStarTree::BuildByInsertion(data, XtreeOptions()).ToRTree();
  RStarTree::Options plain = XtreeOptions();
  plain.supernode_overlap_threshold = -1.0;
  const RTree rstar = RStarTree::BuildByInsertion(data, plain).ToRTree();

  common::Rng rng(68);
  size_t xtree_total = 0, rstar_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto rx = TreeKnnSearch(xtree, data, query, 10);
    const auto rr = TreeKnnSearch(rstar, data, query, 10);
    xtree_total += xtree.CountSphereAccesses(query, rx.kth_distance).total();
    rstar_total += rstar.CountSphereAccesses(query, rr.kth_distance).total();
  }
  // Not a strict theorem on every dataset, but with MAX_OVERLAP = 0.2 on
  // 24-d clustered data the X-tree should not be substantially worse.
  EXPECT_LE(xtree_total, rstar_total * 5 / 4)
      << "xtree " << xtree_total << " vs rstar " << rstar_total;
}

}  // namespace
}  // namespace hdidx::index
