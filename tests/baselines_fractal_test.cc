#include "baselines/fractal.h"

#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"

namespace hdidx::baselines {
namespace {

TEST(FractalEstimatorTest, UniformSquareHasDimensionTwo) {
  common::Rng rng(1);
  const auto data = data::GenerateUniform(50000, 2, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 10);
  EXPECT_NEAR(dims.d0, 2.0, 0.35);
  EXPECT_NEAR(dims.d2, 2.0, 0.35);
}

TEST(FractalEstimatorTest, UniformCubeHasDimensionThree) {
  common::Rng rng(2);
  const auto data = data::GenerateUniform(60000, 3, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 8);
  EXPECT_NEAR(dims.d0, 3.0, 0.5);
  EXPECT_NEAR(dims.d2, 3.0, 0.5);
}

TEST(FractalEstimatorTest, EmbeddedLineHasDimensionOne) {
  // A line in 8-d space: intrinsic dimensionality ~1 regardless of the
  // embedding — the scenario where fractal models beat uniform ones.
  common::Rng rng(3);
  const auto data = data::GenerateLine(40000, 8, 0.0, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 10);
  EXPECT_NEAR(dims.d0, 1.0, 0.25);
  EXPECT_NEAR(dims.d2, 1.0, 0.25);
}

TEST(FractalEstimatorTest, ClusteredDataBelowEmbeddingDim) {
  common::Rng rng(4);
  data::ClusteredConfig config;
  config.num_points = 30000;
  config.dim = 12;
  config.intrinsic_dim = 3.0;
  const auto data = data::GenerateClustered(config, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 10);
  EXPECT_LT(dims.d0, 9.0);
  EXPECT_GT(dims.d0, 0.3);
  EXPECT_LT(dims.d2, 9.0);
}

TEST(FractalEstimatorTest, SinglePointCloudIsDimensionZero) {
  data::Dataset data(3);
  for (int i = 0; i < 1000; ++i) {
    data.Append(std::vector<float>{1.f, 2.f, 3.f});
  }
  const FractalDimensions dims = EstimateFractalDimensions(data, 6);
  EXPECT_NEAR(dims.d0, 0.0, 1e-9);
  EXPECT_NEAR(dims.d2, 0.0, 1e-9);
}

TEST(FractalEstimatorTest, D2NeverExceedsD0Substantially) {
  // Theory: D2 <= D0 for any measure; estimation noise allowed.
  common::Rng rng(5);
  const auto data = data::GenerateUniform(30000, 4, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 8);
  EXPECT_LE(dims.d2, dims.d0 + 0.4);
}

TEST(FractalModelTest, CalibratedRadiusOnUniformData) {
  // On uniform 2-d data the correlation law is exact, so the model's radius
  // should be close to the true expected 10-NN L-inf-ish radius.
  common::Rng rng(6);
  const auto data = data::GenerateUniform(50000, 2, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 10);
  FractalModelParams params;
  params.num_points = data.size();
  params.num_leaf_pages = 1000;
  params.k = 10;
  const FractalModelResult result = PredictFractalModel(dims, params);
  ASSERT_TRUE(result.applicable);
  // True radius scale: sqrt(k/(N*pi)) ~ 0.0080 for the L2 ball.
  EXPECT_GT(result.radius, 0.001);
  EXPECT_LT(result.radius, 0.1);
}

TEST(FractalModelTest, AccessesBoundedByPages) {
  common::Rng rng(7);
  const auto data = data::GenerateLine(20000, 6, 0.001, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 10);
  FractalModelParams params;
  params.num_points = data.size();
  params.num_leaf_pages = 500;
  params.k = 21;
  const FractalModelResult result = PredictFractalModel(dims, params);
  EXPECT_LE(result.predicted_accesses, 500.0);
  EXPECT_GE(result.predicted_accesses, 0.0);
}

TEST(FractalModelTest, DegenerateDimensionsAreInapplicable) {
  FractalDimensions dims;  // all zeros
  FractalModelParams params;
  params.num_points = 1000;
  params.num_leaf_pages = 100;
  params.k = 5;
  const FractalModelResult result = PredictFractalModel(dims, params);
  EXPECT_FALSE(result.applicable);
}

TEST(FractalModelTest, RadiusGrowsWithK) {
  common::Rng rng(8);
  const auto data = data::GenerateUniform(30000, 3, &rng);
  const FractalDimensions dims = EstimateFractalDimensions(data, 8);
  FractalModelParams params;
  params.num_points = data.size();
  params.num_leaf_pages = 800;
  params.k = 1;
  const double r1 = PredictFractalModel(dims, params).radius;
  params.k = 50;
  const double r50 = PredictFractalModel(dims, params).radius;
  EXPECT_GT(r50, r1);
}

}  // namespace
}  // namespace hdidx::baselines
