#include "service/prediction_service.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "geometry/kernels.h"
#include "gtest/gtest.h"
#include "service/protocol.h"
#include "test_util.h"

namespace hdidx::service {
namespace {

// Small page size keeps the index at height >= 3 on a few thousand points,
// so cutoff/resampled run (and run fast) in unit tests.
constexpr size_t kPageBytes = 1024;

ServiceRequest Req(const std::string& dataset, const std::string& method,
                   uint64_t seed, size_t memory = 500) {
  ServiceRequest r;
  r.dataset = dataset;
  r.method = method;
  r.memory = memory;
  r.num_queries = 25;
  r.k = 5;
  r.seed = seed;
  r.page_bytes = kPageBytes;
  return r;
}

std::unique_ptr<PredictionService> MakeService(size_t shards,
                                               size_t cache_entries = 64) {
  ServiceOptions options;
  options.num_shards = shards;
  options.total_threads = 4;
  options.result_cache_entries = cache_entries;
  auto svc = std::make_unique<PredictionService>(options);
  std::string error;
  uint64_t seed = 11;
  for (const char* name : {"alpha", "beta", "gamma"}) {
    EXPECT_TRUE(svc->registry().Add(
        name, testing::SmallClustered(3000, 8, seed++), &error))
        << error;
  }
  return svc;
}

TEST(PredictionServiceTest, CacheHitIsBitIdenticalAndCheaper) {
  auto svc = MakeService(1);
  const ServiceRequest request = Req("alpha", "resampled", 3);

  const ServiceResponse cold = svc->Process(request);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  // The resampled predictor pays for query-point reads, the scan, the
  // resampling pass, and the area reads.
  EXPECT_GT(cold.served_io.page_transfers, 0u);

  const ServiceResponse warm = svc->Process(request);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  // Strictly lower simulated serving cost: a hit charges nothing.
  EXPECT_EQ(warm.served_io.page_transfers, 0u);
  EXPECT_EQ(warm.served_io.page_seeks, 0u);
  EXPECT_LT(warm.served_io.page_transfers, cold.served_io.page_transfers);

  // Byte-identical payload, down to every per-query count.
  EXPECT_EQ(SerializeResult(cold, /*per_query=*/true),
            SerializeResult(warm, /*per_query=*/true));
  EXPECT_EQ(cold.result.per_query_accesses, warm.result.per_query_accesses);

  const ServiceMetrics metrics = svc->Metrics();
  EXPECT_EQ(metrics.result_hits, 1u);
  EXPECT_EQ(metrics.result_misses, 1u);
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.errors, 0u);
}

TEST(PredictionServiceTest, ResponsesInvariantAcrossShardCountsAndOrder) {
  // One request per (dataset, method, seed) combination, ids 1..N.
  std::vector<ServiceRequest> requests;
  uint64_t id = 0;
  for (const char* dataset : {"alpha", "beta", "gamma"}) {
    for (const char* method : {"mini", "cutoff", "resampled"}) {
      for (const uint64_t seed : {1, 2}) {
        ServiceRequest r = Req(dataset, method, seed);
        r.id = ++id;
        requests.push_back(r);
      }
    }
  }

  // Reference: one shard, arrival order.
  auto reference_svc = MakeService(1);
  const auto reference = reference_svc->ProcessBatch(requests);
  for (const auto& response : reference) {
    ASSERT_TRUE(response.ok) << response.error;
  }

  const auto expect_same = [&](const std::vector<ServiceResponse>& got) {
    ASSERT_EQ(got.size(), reference.size());
    for (const auto& response : got) {
      ASSERT_TRUE(response.ok) << response.error;
      const auto& ref = reference[response.id - 1];
      EXPECT_EQ(SerializeResult(response, /*per_query=*/true),
                SerializeResult(ref, /*per_query=*/true))
          << "request id " << response.id;
    }
  };

  for (const size_t shards : {2, 4}) {
    auto svc = MakeService(shards);
    expect_same(svc->ProcessBatch(requests));
  }

  // Shuffled arrival order on a fresh 2-shard service: a deterministic
  // permutation (reverse + interleave) so the test itself stays stable.
  std::vector<ServiceRequest> shuffled(requests.rbegin(), requests.rend());
  std::rotate(shuffled.begin(), shuffled.begin() + shuffled.size() / 3,
              shuffled.end());
  auto shuffled_svc = MakeService(2);
  expect_same(shuffled_svc->ProcessBatch(shuffled));
}

TEST(PredictionServiceTest, TinyCacheEvictsButStaysCorrect) {
  auto svc = MakeService(1, /*cache_entries=*/1);
  const ServiceRequest a = Req("alpha", "resampled", 5);
  const ServiceRequest b = Req("alpha", "resampled", 6);

  const ServiceResponse a1 = svc->Process(a);
  const ServiceResponse b1 = svc->Process(b);  // evicts a
  const ServiceResponse a2 = svc->Process(a);  // recomputed, evicts b
  const ServiceResponse b2 = svc->Process(b);  // recomputed

  for (const auto* r : {&a1, &b1, &a2, &b2}) ASSERT_TRUE(r->ok) << r->error;
  EXPECT_FALSE(a2.cache_hit);
  EXPECT_FALSE(b2.cache_hit);
  // Eviction must not change answers: recomputation is bit-identical.
  EXPECT_EQ(SerializeResult(a1, true), SerializeResult(a2, true));
  EXPECT_EQ(SerializeResult(b1, true), SerializeResult(b2, true));

  const ServiceMetrics metrics = svc->Metrics();
  EXPECT_EQ(metrics.result_hits, 0u);
  EXPECT_EQ(metrics.result_misses, 4u);
  EXPECT_GE(metrics.result_evictions, 2u);
}

TEST(PredictionServiceTest, WorkloadCacheSharedAcrossMemoryBudgets) {
  auto svc = MakeService(1);
  // Same (dataset, q, k, seed) under different memory budgets and methods:
  // the workload is drawn once and reused.
  const ServiceResponse first = svc->Process(Req("beta", "mini", 9, 300));
  const ServiceResponse second = svc->Process(Req("beta", "mini", 9, 900));
  const ServiceResponse third = svc->Process(Req("beta", "resampled", 9, 600));
  ASSERT_TRUE(first.ok && second.ok && third.ok);
  EXPECT_FALSE(first.workload_cache_hit);
  EXPECT_TRUE(second.workload_cache_hit);
  EXPECT_TRUE(third.workload_cache_hit);
  EXPECT_FALSE(second.cache_hit);  // different key, different result

  const ServiceMetrics metrics = svc->Metrics();
  EXPECT_EQ(metrics.workload_hits, 2u);
  EXPECT_EQ(metrics.workload_misses, 1u);
}

TEST(PredictionServiceTest, BatchKeepsArrivalOrderAcrossShards) {
  auto svc = MakeService(4);
  std::vector<ServiceRequest> requests;
  uint64_t id = 100;
  for (const char* dataset : {"gamma", "alpha", "beta", "alpha", "gamma"}) {
    ServiceRequest r = Req(dataset, "mini", 1);
    r.id = id++;
    requests.push_back(r);
  }
  const auto responses = svc->ProcessBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].id, requests[i].id);
    EXPECT_EQ(responses[i].shard,
              svc->registry().ShardOf(requests[i].dataset));
  }
  const ServiceMetrics metrics = svc->Metrics();
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.requests, 5u);
  EXPECT_DOUBLE_EQ(metrics.mean_batch_size, 5.0);
}

TEST(PredictionServiceKernelTest, ResponsesInvariantAcrossKernelModes) {
  namespace gk = geometry::kernels;
  // Every method, served by fresh services pinned to each kernel mode:
  // responses must be byte-identical down to per-query counts (the batched
  // kernels' bit-identity contract, observed end to end at the service
  // boundary). Fresh services per mode so no cache hit papers over a
  // divergence.
  std::vector<ServiceRequest> requests;
  uint64_t id = 0;
  for (const char* method : {"mini", "cutoff", "resampled"}) {
    ServiceRequest r = Req("alpha", method, 4);
    r.id = ++id;
    requests.push_back(r);
  }

  gk::SetKernelMode(gk::KernelMode::kScalar);
  auto scalar_svc = MakeService(2);
  const auto scalar = scalar_svc->ProcessBatch(requests);

  // Every batched lane the host can run, not just the generic one: the
  // serialized responses must match the scalar service byte for byte.
  for (const gk::KernelMode mode : gk::SupportedKernelModes()) {
    if (mode == gk::KernelMode::kScalar) continue;
    gk::SetKernelMode(mode);
    auto batched_svc = MakeService(2);
    const auto batched = batched_svc->ProcessBatch(requests);
    ASSERT_EQ(batched.size(), scalar.size());
    for (size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_TRUE(scalar[i].ok) << scalar[i].error;
      ASSERT_TRUE(batched[i].ok) << batched[i].error;
      EXPECT_EQ(SerializeResult(batched[i], /*per_query=*/true),
                SerializeResult(scalar[i], /*per_query=*/true))
          << "request id " << scalar[i].id << ", mode "
          << gk::KernelModeName(mode);
    }
  }
  gk::ClearKernelModeOverride();
}

TEST(PredictionServiceTest, ErrorsAreDeterministicResponses) {
  auto svc = MakeService(2);
  const ServiceResponse unknown_ds = svc->Process(Req("nope", "mini", 1));
  EXPECT_FALSE(unknown_ds.ok);
  EXPECT_NE(unknown_ds.error.find("unknown dataset"), std::string::npos);

  const ServiceResponse unknown_method = svc->Process(Req("alpha", "vaft", 1));
  EXPECT_FALSE(unknown_method.ok);
  EXPECT_NE(unknown_method.error.find("unknown method"), std::string::npos);

  ServiceRequest zero_k = Req("alpha", "mini", 1);
  zero_k.k = 0;
  EXPECT_FALSE(svc->Process(zero_k).ok);

  EXPECT_EQ(svc->Metrics().errors, 3u);
}

TEST(DatasetRegistryTest, StableShardAssignmentAndUniqueness) {
  DatasetRegistry a(4);
  DatasetRegistry b(4);
  // Routing depends only on (name, num_shards) — identical across
  // instances, defined even before registration.
  for (const char* name : {"x", "y", "some/long/dataset.hdx"}) {
    EXPECT_EQ(a.ShardOf(name), b.ShardOf(name));
    EXPECT_LT(a.ShardOf(name), 4u);
  }
  std::string error;
  EXPECT_TRUE(a.Add("x", testing::SmallClustered(100, 4, 1), &error));
  EXPECT_FALSE(a.Add("x", testing::SmallClustered(100, 4, 2), &error));
  EXPECT_NE(error.find("already registered"), std::string::npos);
  EXPECT_FALSE(a.LoadFile("missing", "/no/such/file.hdx", &error));
  EXPECT_EQ(a.size(), 1u);
  ASSERT_NE(a.Find("x"), nullptr);
  EXPECT_EQ(a.Find("y"), nullptr);
}

}  // namespace
}  // namespace hdidx::service
