#include "core/hupper.h"

#include "gtest/gtest.h"
#include "io/disk_model.h"

namespace hdidx::core {
namespace {

index::TreeTopology Texture60Topology() {
  return index::TreeTopology::FromDisk(275465, 60, io::DiskModel{});
}

TEST(HupperTest, StopLevelArithmetic) {
  const auto topo = Texture60Topology();
  ASSERT_EQ(topo.height(), 5u);
  EXPECT_EQ(StopLevel(topo, 1), 5u);
  EXPECT_EQ(StopLevel(topo, 2), 4u);
  EXPECT_EQ(StopLevel(topo, 5), 1u);
}

TEST(HupperTest, SigmaUpperMatchesPaper) {
  const auto topo = Texture60Topology();
  // Paper Table 3: sigma_upper = 0.0363 for M = 10,000.
  EXPECT_NEAR(SigmaUpper(topo, 10000), 0.0363, 0.0001);
  EXPECT_DOUBLE_EQ(SigmaUpper(topo, 10000000), 1.0);
}

TEST(HupperTest, SigmaLowerMatchesPaperTable3) {
  const auto topo = Texture60Topology();
  // h_upper = 2: k = 3 upper leaves -> sigma_lower = 0.1089.
  EXPECT_NEAR(SigmaLower(topo, 10000, 2), 0.1089, 0.0005);
  // h_upper = 3: k = 33 -> saturates at 1.
  EXPECT_DOUBLE_EQ(SigmaLower(topo, 10000, 3), 1.0);
  // h_upper = 4 saturates too.
  EXPECT_DOUBLE_EQ(SigmaLower(topo, 10000, 4), 1.0);
}

TEST(HupperTest, SigmaLowerAtLeastSigmaUpper) {
  const auto topo = Texture60Topology();
  for (size_t h = 2; h < topo.height(); ++h) {
    EXPECT_GE(SigmaLower(topo, 10000, h), SigmaUpper(topo, 10000));
  }
}

TEST(HupperTest, ChooseHupperPicksPaperValue) {
  const auto topo = Texture60Topology();
  // pts(stop) closest to M = 10,000: stop level 3 has ~8,348 points per
  // subtree; stop 4 has ~91,800. The paper's best h_upper is 3.
  EXPECT_EQ(ChooseHupper(topo, 10000), 3u);
}

TEST(HupperTest, ChooseHupperSmallMemory) {
  const auto topo = Texture60Topology();
  // M = 1,000: pts(stop) ~ 528-ish is closest -> stop level 2, h_upper 4
  // (the paper's M=1,000 diagrams use h_upper = 4).
  EXPECT_EQ(ChooseHupper(topo, 1000), 4u);
}

TEST(HupperTest, BoundsWithinValidRange) {
  const auto topo = Texture60Topology();
  for (bool resampled : {false, true}) {
    const HupperBounds b = ComputeHupperBounds(topo, 10000, resampled);
    EXPECT_GE(b.lower, 2u);
    EXPECT_LE(b.upper, topo.height() - 1);
    EXPECT_LE(b.lower, b.upper);
  }
}

TEST(HupperTest, UpperBoundShrinksWithMemory) {
  const auto topo = Texture60Topology();
  const HupperBounds big = ComputeHupperBounds(topo, 100000, true);
  const HupperBounds small = ComputeHupperBounds(topo, 100, true);
  EXPECT_LE(small.upper, big.upper);
}

TEST(HupperTest, DegenerateShortTree) {
  const index::TreeTopology flat(100, 50, 4);  // height 2
  const HupperBounds b = ComputeHupperBounds(flat, 10, true);
  EXPECT_EQ(b.lower, b.upper);
}

}  // namespace
}  // namespace hdidx::core
