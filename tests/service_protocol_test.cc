#include "service/protocol.h"

#include <cstdio>
#include <sstream>
#include <string>

#include "data/dataset_io.h"
#include "gtest/gtest.h"
#include "service/server.h"
#include "test_util.h"

namespace hdidx::service {
namespace {

TEST(ProtocolParseTest, FlatObjectRoundTrip) {
  std::map<std::string, JsonValue> fields;
  std::string error;
  ASSERT_TRUE(ParseFlatJsonObject(
      R"({"s":"a\"b\\c","n":-1.5e2,"t":true,"f":false,"z":null})", &fields,
      &error))
      << error;
  EXPECT_EQ(fields["s"].kind, JsonValue::Kind::kString);
  EXPECT_EQ(fields["s"].str, "a\"b\\c");
  EXPECT_EQ(fields["n"].kind, JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(fields["n"].num, -150.0);
  EXPECT_TRUE(fields["t"].boolean);
  EXPECT_FALSE(fields["f"].boolean);
  EXPECT_EQ(fields["z"].kind, JsonValue::Kind::kNull);

  EXPECT_TRUE(ParseFlatJsonObject("  { }  ", &fields, &error));
  EXPECT_TRUE(fields.empty());
}

TEST(ProtocolParseTest, MalformedInputsAreRejectedWithReasons) {
  std::map<std::string, JsonValue> fields;
  std::string error;
  EXPECT_FALSE(ParseFlatJsonObject("not json", &fields, &error));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1", &fields, &error));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1} trailing", &fields, &error));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":}", &fields, &error));
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":\"unterminated}", &fields, &error));
  // Nested containers are a request-side error by design.
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":{\"b\":1}}", &fields, &error));
  EXPECT_NE(error.find("nested"), std::string::npos);
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":[1,2]}", &fields, &error));
}

TEST(ProtocolParseTest, PredictRequestFieldsAndDefaults) {
  RequestLine line;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(
      R"({"op":"predict","dataset":"d1","method":"mini","memory":2000,)"
      R"("num_queries":50,"k":7,"seed":42,"page_bytes":4096,"id":9,)"
      R"("per_query":true})",
      &line, &error))
      << error;
  EXPECT_EQ(line.op, RequestLine::Op::kPredict);
  EXPECT_TRUE(line.has_id);
  EXPECT_EQ(line.predict.id, 9u);
  EXPECT_EQ(line.predict.dataset, "d1");
  EXPECT_EQ(line.predict.method, "mini");
  EXPECT_EQ(line.predict.memory, 2000u);
  EXPECT_EQ(line.predict.num_queries, 50u);
  EXPECT_EQ(line.predict.k, 7u);
  EXPECT_EQ(line.predict.seed, 42u);
  EXPECT_EQ(line.predict.page_bytes, 4096u);
  EXPECT_TRUE(line.predict.per_query);

  // Minimal predict: only the dataset; everything else defaults.
  ASSERT_TRUE(ParseRequestLine(R"({"dataset":"d2"})", &line, &error));
  EXPECT_EQ(line.op, RequestLine::Op::kPredict);
  EXPECT_FALSE(line.has_id);
  EXPECT_EQ(line.predict.method, "resampled");
  EXPECT_EQ(line.predict.page_bytes, 8192u);

  // Required / typed fields.
  EXPECT_FALSE(ParseRequestLine(R"({"op":"predict"})", &line, &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op":"predict","dataset":"d","k":2.5})", &line, &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op":"predict","dataset":"d","k":-3})", &line, &error));
  EXPECT_FALSE(ParseRequestLine(
      R"({"op":"predict","dataset":"d","memory":"lots"})", &line, &error));
  EXPECT_FALSE(ParseRequestLine(R"({"op":"teleport"})", &line, &error));
  EXPECT_NE(error.find("unknown op"), std::string::npos);
}

TEST(ProtocolParseTest, LoadStatsShutdownOps) {
  RequestLine line;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(
      R"({"op":"load","dataset":"d","path":"/tmp/x.hdx"})", &line, &error));
  EXPECT_EQ(line.op, RequestLine::Op::kLoad);
  EXPECT_EQ(line.load_dataset, "d");
  EXPECT_EQ(line.load_path, "/tmp/x.hdx");
  EXPECT_FALSE(ParseRequestLine(R"({"op":"load","dataset":"d"})", &line,
                                &error));
  ASSERT_TRUE(ParseRequestLine(R"({"op":"stats"})", &line, &error));
  EXPECT_EQ(line.op, RequestLine::Op::kStats);
  ASSERT_TRUE(ParseRequestLine(R"({"op":"shutdown"})", &line, &error));
  EXPECT_EQ(line.op, RequestLine::Op::kShutdown);
}

TEST(ProtocolSerializeTest, QuotingAndErrorResults) {
  EXPECT_EQ(JsonQuote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  ServiceResponse failed;
  failed.ok = false;
  failed.error = "unknown dataset: \"x\"";
  const std::string serialized = SerializeResult(failed, false);
  EXPECT_EQ(serialized, "{\"error\":\"unknown dataset: \\\"x\\\"\"}");
}

TEST(ProtocolSerializeTest, ResultPayloadIsSelfConsistent) {
  ServiceResponse response;
  response.ok = true;
  response.id = 3;
  response.result.avg_leaf_accesses = 12.5;
  response.result.per_query_accesses = {12.0, 13.0};
  response.result.num_predicted_leaves = 7;
  response.result.h_upper = 2;
  response.result.sigma_upper = 0.25;
  response.result.sigma_lower = 1.0;
  response.result.io.page_seeks = 11;
  response.result.io.page_transfers = 22;
  const std::string payload = SerializeResult(response, true);
  EXPECT_NE(payload.find("\"avg_leaf_accesses\":12.5"), std::string::npos);
  EXPECT_NE(payload.find("\"num_queries\":2"), std::string::npos);
  EXPECT_NE(payload.find("\"per_query\":[12,13]"), std::string::npos);
  EXPECT_NE(payload.find("\"io_seeks\":11"), std::string::npos);

  const std::string full = SerializePredictResponse(response, false);
  EXPECT_NE(full.find("\"op\":\"predict\""), std::string::npos);
  EXPECT_NE(full.find("\"id\":3"), std::string::npos);
  EXPECT_NE(full.find("\"cache\":\"miss\""), std::string::npos);
  // The metadata wrapper embeds the identical payload bytes.
  EXPECT_NE(full.find(SerializeResult(response, false)), std::string::npos);
}

TEST(ServerLoopTest, BatchesFlushAndShutdownCleanly) {
  ServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  PredictionService svc(options);
  std::string error;
  ASSERT_TRUE(svc.registry().Add(
      "d", testing::SmallClustered(1200, 6, 21), &error))
      << error;

  // Two predict lines batched, a blank-line flush, the same two again (now
  // cache hits), stats, shutdown. page_bytes=1024 keeps the tree height
  // >= 3 at this size; method mini works regardless.
  const char* script =
      "{\"op\":\"predict\",\"dataset\":\"d\",\"method\":\"mini\","
      "\"memory\":200,\"num_queries\":10,\"k\":3,\"page_bytes\":1024}\n"
      "{\"op\":\"predict\",\"dataset\":\"d\",\"method\":\"mini\","
      "\"memory\":300,\"num_queries\":10,\"k\":3,\"page_bytes\":1024}\n"
      "\n"
      "{\"op\":\"predict\",\"dataset\":\"d\",\"method\":\"mini\","
      "\"memory\":200,\"num_queries\":10,\"k\":3,\"page_bytes\":1024}\n"
      "this is not json\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"predict\",\"dataset\":\"d\"}\n";  // after shutdown: ignored
  std::istringstream in(script);
  std::ostringstream out;
  const size_t served = RunServer(in, out, &svc);
  EXPECT_EQ(served, 3u);

  const std::string output = out.str();
  // Sequence ids assigned in arrival order; the third predict repeats the
  // first request and must be served from cache.
  EXPECT_NE(output.find("\"id\":1"), std::string::npos);
  EXPECT_NE(output.find("\"id\":2"), std::string::npos);
  EXPECT_NE(output.find("\"id\":3"), std::string::npos);
  EXPECT_EQ(output.find("\"id\":4"), std::string::npos);
  EXPECT_NE(output.find("\"cache\":\"hit\""), std::string::npos);
  EXPECT_NE(output.find("\"op\":\"error\""), std::string::npos);
  EXPECT_NE(output.find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(output.find("\"op\":\"shutdown\",\"ok\":true,\"served\":3"),
            std::string::npos);
  const ServiceMetrics metrics = svc.Metrics();
  EXPECT_EQ(metrics.requests, 3u);
  EXPECT_EQ(metrics.batches, 2u);
  EXPECT_EQ(metrics.result_hits, 1u);
}

TEST(ServerLoopTest, LoadOpLoadsFromDiskOnce) {
  ServiceOptions options;
  PredictionService svc(options);
  const data::Dataset dataset = testing::SmallClustered(400, 5, 33);
  const std::string path =
      ::testing::TempDir() + "/service_protocol_load.hdx";
  std::string error;
  ASSERT_TRUE(data::WriteDataset(dataset, path, &error)) << error;

  std::istringstream in(
      "{\"op\":\"load\",\"dataset\":\"disk\",\"path\":" + JsonQuote(path) +
      "}\n"
      "{\"op\":\"load\",\"dataset\":\"disk\",\"path\":" + JsonQuote(path) +
      "}\n"
      "{\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  RunServer(in, out, &svc);
  const std::string output = out.str();
  EXPECT_NE(output.find("\"op\":\"load\",\"ok\":true,\"dataset\":\"disk\","
                        "\"points\":400,\"dims\":5"),
            std::string::npos);
  // The second load of the same name is refused: datasets load once.
  EXPECT_NE(output.find("already registered"), std::string::npos);
  EXPECT_EQ(svc.registry().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hdidx::service
