/// Parameterized property sweeps: invariants that must hold across a grid
/// of dataset shapes, capacities, and sampling fractions.

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "core/compensation.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "geometry/kernels.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx {
namespace {

// ---------------------------------------------------------------------------
// Bulk-loader invariants across (n, dim, data_capacity, dir_capacity).
// ---------------------------------------------------------------------------

using TreeParams = std::tuple<size_t, size_t, size_t, size_t>;

class BulkLoadProperty : public ::testing::TestWithParam<TreeParams> {};

TEST_P(BulkLoadProperty, TreeInvariantsHold) {
  const auto [n, dim, data_cap, dir_cap] = GetParam();
  const auto data = testing::SmallClustered(n, dim, 1000 + n + dim);
  const index::TreeTopology topo(n, data_cap, dir_cap);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  testing::ExpectValidTree(tree, data, 1);
  EXPECT_EQ(tree.num_leaves(), topo.NumLeaves());
  for (uint32_t id : tree.leaf_ids()) {
    EXPECT_LE(tree.node(id).count, data_cap);
  }
}

TEST_P(BulkLoadProperty, KnnSearchMatchesScan) {
  const auto [n, dim, data_cap, dir_cap] = GetParam();
  const auto data = testing::SmallClustered(n, dim, 2000 + n + dim);
  const index::TreeTopology topo(n, data_cap, dir_cap);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  common::Rng rng(n + dim);
  for (int trial = 0; trial < 3; ++trial) {
    const auto query = data.row(rng.NextBounded(n));
    const auto result = index::TreeKnnSearch(tree, data, query, 3);
    const double exact = index::ExactKthDistance(data, query, 3, -1.0);
    EXPECT_NEAR(result.kth_distance, exact, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, BulkLoadProperty,
    ::testing::Values(TreeParams{100, 2, 5, 3}, TreeParams{500, 3, 10, 4},
                      TreeParams{1000, 8, 20, 5}, TreeParams{2000, 16, 16, 8},
                      TreeParams{3000, 4, 50, 12}, TreeParams{777, 5, 7, 2},
                      TreeParams{64, 32, 8, 4}, TreeParams{4096, 6, 32, 16}));

// ---------------------------------------------------------------------------
// Parallel-build invariants for randomized (n, dim, data_cap, dir_cap): a
// build fanned out over a 4-thread pool must leave leaves tiling [0, n)
// exactly once, and — with scale 1 — every page at every level full except
// the rightmost one (the level-wise loader's packing guarantee, which makes
// node counts the topology's ceilings).
// ---------------------------------------------------------------------------

class ParallelBuildProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelBuildProperty, LeavesTileAndOnlyRightmostPagePartial) {
  common::Rng shape_rng(GetParam());
  const size_t n = 50 + shape_rng.NextBounded(4000);
  const size_t dim = 2 + shape_rng.NextBounded(14);
  const size_t data_cap = 2 + shape_rng.NextBounded(38);
  const size_t dir_cap = 2 + shape_rng.NextBounded(12);
  const auto data = testing::SmallClustered(n, dim, GetParam() * 977 + 5);
  const index::TreeTopology topo(n, data_cap, dir_cap);

  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool);
  index::BulkLoadOptions options;
  options.topology = &topo;
  options.exec = &ctx;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  testing::ExpectValidTree(tree, data, 1);

  // Leaves tile [0, n) exactly once, in leaf_ids (left-to-right) order.
  size_t covered = 0;
  for (const uint32_t id : tree.leaf_ids()) {
    EXPECT_EQ(tree.node(id).start, covered) << "gap/overlap before leaf " << id;
    covered += tree.node(id).count;
  }
  EXPECT_EQ(covered, n);

  // Points under every node, per level, in left-to-right (DFS) order.
  std::vector<std::vector<size_t>> points_at_level(tree.root_level() + 1);
  const auto subtree_points = [&tree, &points_at_level](
                                  const auto& self, uint32_t id) -> size_t {
    const index::RTreeNode& node = tree.node(id);
    size_t points = node.count;
    for (const uint32_t child : node.children) points += self(self, child);
    points_at_level[node.level].push_back(points);
    return points;
  };
  subtree_points(subtree_points, tree.root());

  for (size_t level = 1; level <= tree.root_level(); ++level) {
    // DFS pushes a node after its subtree, which still visits each level
    // left to right.
    const std::vector<size_t>& nodes = points_at_level[level];
    ASSERT_EQ(nodes.size(), topo.NodesAtLevel(level)) << "level " << level;
    const size_t cap = topo.SubtreeCapacity(level);
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      EXPECT_EQ(nodes[i], cap)
          << "non-rightmost node " << i << " at level " << level
          << " is not full";
    }
    EXPECT_EQ(nodes.back(), n - (nodes.size() - 1) * cap)
        << "rightmost node at level " << level;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBuildProperty,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Compensation-factor properties across (capacity, zeta).
// ---------------------------------------------------------------------------

using CompParams = std::tuple<double, double>;

class CompensationProperty : public ::testing::TestWithParam<CompParams> {};

TEST_P(CompensationProperty, GrowthAtLeastOneAndFinite) {
  const auto [capacity, zeta] = GetParam();
  const double g = core::CompensationGrowthPerDim(capacity, zeta);
  EXPECT_GE(g, 1.0);
  EXPECT_LT(g, 5.0);
  EXPECT_TRUE(std::isfinite(g));
}

TEST_P(CompensationProperty, DeltaConsistentWithGrowth) {
  const auto [capacity, zeta] = GetParam();
  for (size_t dim : {1u, 8u, 64u, 617u}) {
    const double g = core::CompensationGrowthPerDim(capacity, zeta);
    const double log_delta = dim * std::log(g);
    if (log_delta > 700.0) continue;  // g^dim overflows a double
    const double delta = core::CompensationDelta(capacity, zeta, dim);
    EXPECT_NEAR(std::log(delta), log_delta, 1e-9 * dim);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityZetaGrid, CompensationProperty,
    ::testing::Combine(::testing::Values(5.0, 33.0, 100.0, 1000.0),
                       ::testing::Values(0.01, 0.1, 0.3, 0.6, 0.95)));

// ---------------------------------------------------------------------------
// MINDIST properties against sampled points: MINDIST is a lower bound on
// the distance to any point in the box, and 0 iff inside.
// ---------------------------------------------------------------------------

class MinDistProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(MinDistProperty, LowerBoundsDistanceToContainedPoints) {
  const size_t dim = GetParam();
  common::Rng rng(dim * 31);
  const auto points = data::GenerateUniform(200, dim, &rng);
  const auto box = points.Bounds();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> q(dim);
    for (auto& v : q) {
      v = static_cast<float>(rng.NextUniform(-2.0, 3.0));
    }
    const double min_dist = geometry::MinDist(q, box);
    for (size_t i = 0; i < points.size(); i += 17) {
      EXPECT_LE(min_dist, geometry::L2(q, points.row(i)) + 1e-9);
    }
    EXPECT_EQ(min_dist == 0.0, box.Contains(q));
    EXPECT_LE(min_dist, geometry::MaxDist(q, box) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, MinDistProperty,
                         ::testing::Values(1, 2, 3, 8, 32, 128));

// ---------------------------------------------------------------------------
// Topology properties across (n, caps): counts are consistent ceilings.
// ---------------------------------------------------------------------------

using TopoParams = std::tuple<size_t, size_t, size_t>;

class TopologyProperty : public ::testing::TestWithParam<TopoParams> {};

TEST_P(TopologyProperty, CeilingConsistency) {
  const auto [n, data_cap, dir_cap] = GetParam();
  const index::TreeTopology topo(n, data_cap, dir_cap);
  EXPECT_GE(topo.SubtreeCapacity(topo.height()), n);
  if (topo.height() > 1) {
    EXPECT_LT(topo.SubtreeCapacity(topo.height() - 1), n);
  }
  EXPECT_EQ(topo.NodesAtLevel(topo.height()), 1u);
  for (size_t level = 1; level <= topo.height(); ++level) {
    const size_t nodes = topo.NodesAtLevel(level);
    EXPECT_GE(nodes * topo.SubtreeCapacity(level), n);
    EXPECT_LT((nodes - 1) * topo.SubtreeCapacity(level), n);
    EXPECT_GT(topo.PointsPerSubtree(level), 0.0);
    EXPECT_LE(topo.PointsPerSubtree(level),
              static_cast<double>(topo.SubtreeCapacity(level)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeGrid, TopologyProperty,
    ::testing::Values(TopoParams{1, 10, 4}, TopoParams{10, 10, 4},
                      TopoParams{11, 10, 4}, TopoParams{100000, 33, 16},
                      TopoParams{275465, 33, 16}, TopoParams{999983, 7, 2},
                      TopoParams{42, 1, 2}, TopoParams{65536, 16, 16}));

// ---------------------------------------------------------------------------
// Kernel equivalence: every batched geometry kernel lane the host can run
// (generic and each reachable SIMD ISA) must be bit-identical to the
// retained scalar reference across every (dimension, slab size)
// combination, including slab sizes straddling the kBlock stride boundary,
// empty boxes mixed into the slab, and degenerate all-identical datasets.
// EXPECT_EQ throughout — on doubles, not EXPECT_NEAR.
// ---------------------------------------------------------------------------

using KernelParams = std::tuple<size_t, size_t>;  // (dim, slab/box count)

class KernelEquivalenceProperty
    : public ::testing::TestWithParam<KernelParams> {};

TEST_P(KernelEquivalenceProperty, SphereAndBoxCountsBitIdentical) {
  namespace gk = geometry::kernels;
  const auto [dim, count] = GetParam();
  common::Rng rng(dim * 131 + count);
  std::vector<geometry::BoundingBox> boxes;
  for (size_t i = 0; i < count; ++i) {
    std::vector<float> lo(dim), hi(dim);
    for (size_t d = 0; d < dim; ++d) {
      const float a = static_cast<float>(rng.NextUniform(-1.0, 2.0));
      const float b = static_cast<float>(rng.NextUniform(-1.0, 2.0));
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    boxes.emplace_back(std::move(lo), std::move(hi));
  }
  // Sprinkle empty boxes (infinitely far sentinels in the slab).
  for (size_t i = 2; i < boxes.size(); i += 5) {
    boxes[i] = geometry::BoundingBox(dim);
  }
  const gk::BoxSlab slab{std::span<const geometry::BoundingBox>(boxes)};
  ASSERT_EQ(slab.size(), count);
  ASSERT_EQ(slab.padded_size() % gk::BoxSlab::kBlock, 0u);

  for (int trial = 0; trial < 8; ++trial) {
    std::vector<float> center(dim);
    for (auto& v : center) {
      v = static_cast<float>(rng.NextUniform(-1.5, 2.5));
    }
    const double r = rng.NextUniform(0.0, 0.5 * std::sqrt(double(dim)));
    const double r2 = r * r;
    size_t brute = 0;
    for (const auto& box : boxes) {
      if (geometry::SquaredMinDist(center, box) <= r2) ++brute;
    }
    std::vector<uint32_t> scalar_hits;
    gk::AppendSphereHits(center, r2, slab, &scalar_hits,
                         gk::KernelMode::kScalar);
    const auto query_box = boxes[rng.NextBounded(boxes.size())];
    size_t box_brute = 0;
    for (const auto& box : boxes) {
      if (query_box.Intersects(box)) ++box_brute;
    }
    const size_t scalar_nearest =
        gk::NearestBox(center, slab, gk::KernelMode::kScalar);
    for (const gk::KernelMode mode : gk::SupportedKernelModes()) {
      SCOPED_TRACE(std::string(gk::KernelModeName(mode)));
      EXPECT_EQ(gk::CountSphereHits(center, r2, slab, mode), brute);
      std::vector<uint32_t> mode_hits;
      gk::AppendSphereHits(center, r2, slab, &mode_hits, mode);
      EXPECT_EQ(mode_hits, scalar_hits);
      EXPECT_EQ(gk::CountBoxHits(query_box, slab, mode), box_brute);
      EXPECT_EQ(gk::NearestBox(center, slab, mode), scalar_nearest);
    }
  }
}

TEST_P(KernelEquivalenceProperty, ScanKernelsBitIdentical) {
  namespace gk = geometry::kernels;
  const auto [dim, n] = GetParam();
  common::Rng rng(dim * 977 + n);
  std::vector<float> rows(n * dim);
  for (auto& v : rows) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  const size_t k = 1 + rng.NextBounded(n + 2);  // occasionally k > n
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<float> query(dim);
    for (auto& v : query) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    gk::ScanOptions opts;
    switch (trial % 3) {
      case 0:
        break;
      case 1:
        opts.exclude_row = rng.NextBounded(n);
        opts.exclude_row_only_if_zero = (trial % 2) == 1;
        break;
      default:
        opts.exclude_within_sq = 0.0;
        break;
    }
    const double scalar_kth =
        gk::KthDistanceScan(query, rows, dim, k, opts, gk::KernelMode::kScalar);
    const auto scalar_topk = gk::TopKNeighborScan(query, rows, dim, k, opts,
                                                  gk::KernelMode::kScalar);
    for (const gk::KernelMode mode : gk::SupportedKernelModes()) {
      SCOPED_TRACE(std::string(gk::KernelModeName(mode)));
      EXPECT_EQ(gk::KthDistanceScan(query, rows, dim, k, opts, mode),
                scalar_kth);
      EXPECT_EQ(gk::TopKNeighborScan(query, rows, dim, k, opts, mode),
                scalar_topk);
    }
  }

  // All-identical points: every distance ties, the heap keeps the first k
  // rows, and early-exit never fires spuriously.
  std::vector<float> same(n * dim, 0.25f);
  std::vector<float> query(dim, -0.75f);
  const auto scalar = gk::TopKNeighborScan(query, same, dim, k, gk::ScanOptions(),
                                           gk::KernelMode::kScalar);
  for (const gk::KernelMode mode : gk::SupportedKernelModes()) {
    SCOPED_TRACE(std::string(gk::KernelModeName(mode)));
    EXPECT_EQ(gk::TopKNeighborScan(query, same, dim, k, gk::ScanOptions(),
                                   mode),
              scalar);
  }
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].second, i);  // ties retain the lowest rows, in order
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimSlabGrid, KernelEquivalenceProperty,
    ::testing::Combine(::testing::Values(1, 3, 60, 617),
                       ::testing::Values(1, 7, 8, 9, 16, 17)));

// ---------------------------------------------------------------------------
// Sphere-counting consistency: leaf accesses counted through the tree match
// a brute-force scan over leaf boxes, for random radii.
// ---------------------------------------------------------------------------

class SphereCountProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SphereCountProperty, TraversalMatchesBruteForce) {
  const size_t dim = GetParam();
  const auto data = testing::SmallClustered(1500, dim, dim * 7);
  const index::TreeTopology topo(data.size(), 25, 5);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);

  common::Rng rng(dim * 13);
  for (int trial = 0; trial < 10; ++trial) {
    const auto center = data.row(rng.NextBounded(data.size()));
    const double radius = rng.NextUniform(0.0, 0.5);
    size_t brute = 0;
    for (uint32_t id : tree.leaf_ids()) {
      if (geometry::SphereIntersectsBox(center, radius, tree.node(id).box)) {
        ++brute;
      }
    }
    EXPECT_EQ(tree.CountSphereAccesses(center, radius).leaf_accesses, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SphereCountProperty,
                         ::testing::Values(2, 4, 8, 24));

}  // namespace
}  // namespace hdidx
