#include "index/knn.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

TEST(KnnHeapTest, TracksKthSmallest) {
  KnnHeap heap(3);
  EXPECT_FALSE(heap.full());
  EXPECT_TRUE(std::isinf(heap.KthSquared()));
  for (double d : {9.0, 1.0, 4.0}) heap.Push(d);
  EXPECT_TRUE(heap.full());
  EXPECT_DOUBLE_EQ(heap.KthSquared(), 9.0);
  heap.Push(2.0);  // evicts 9
  EXPECT_DOUBLE_EQ(heap.KthSquared(), 4.0);
  heap.Push(100.0);  // ignored
  EXPECT_DOUBLE_EQ(heap.KthSquared(), 4.0);
  EXPECT_DOUBLE_EQ(heap.Kth(), 2.0);
}

TEST(ExactKthDistanceTest, SimpleLine) {
  data::Dataset d(1);
  for (float x : {0.f, 1.f, 2.f, 3.f, 10.f}) {
    d.Append(std::vector<float>{x});
  }
  const std::vector<float> q = {0.f};
  // Excluding the query point itself (distance 0).
  EXPECT_DOUBLE_EQ(ExactKthDistance(d, q, 1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ExactKthDistance(d, q, 3, 0.0), 3.0);
  // Including it.
  EXPECT_DOUBLE_EQ(ExactKthDistance(d, q, 1, -1.0), 0.0);
}

TEST(ExactKnnTest, ReturnsAscendingNeighbors) {
  data::Dataset d(1);
  for (float x : {5.f, 1.f, 3.f, 2.f, 4.f}) {
    d.Append(std::vector<float>{x});
  }
  const auto nn = ExactKnn(d, std::vector<float>{0.f}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], 1u);  // x=1
  EXPECT_EQ(nn[1], 3u);  // x=2
  EXPECT_EQ(nn[2], 2u);  // x=3
}

TEST(ExactKnnTest, KLargerThanDataset) {
  data::Dataset d(1);
  d.Append(std::vector<float>{1.f});
  d.Append(std::vector<float>{2.f});
  const auto nn = ExactKnn(d, std::vector<float>{0.f}, 10);
  EXPECT_EQ(nn.size(), 2u);
}

class TreeKnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(3000, 6, 42);
    topo_ = std::make_unique<TreeTopology>(data_.size(), 20, 6);
    BulkLoadOptions options;
    options.topology = topo_.get();
    tree_ = std::make_unique<RTree>(BulkLoadInMemory(data_, options));
  }

  data::Dataset data_{1};
  std::unique_ptr<TreeTopology> topo_;
  std::unique_ptr<RTree> tree_;
};

TEST_F(TreeKnnTest, MatchesExactScan) {
  common::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t row = rng.NextBounded(data_.size());
    const auto query = data_.row(row);
    const auto exact = ExactKnn(data_, query, 5);
    const auto result = TreeKnnSearch(*tree_, data_, query, 5);
    ASSERT_EQ(result.neighbors.size(), 5u);
    // Distances must match exactly (neighbor identity can differ on ties).
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(
          geometry::SquaredL2(data_.row(result.neighbors[i]), query),
          geometry::SquaredL2(data_.row(exact[i]), query));
    }
  }
}

TEST_F(TreeKnnTest, AccessesMatchSphereCounting) {
  // The pages an optimal best-first search reads are exactly those whose
  // MBR intersects the final k-NN sphere — the equivalence both the
  // paper's measurement and our predictors rely on.
  common::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t row = rng.NextBounded(data_.size());
    const auto query = data_.row(row);
    const auto result = TreeKnnSearch(*tree_, data_, query, 8);
    const auto sphere =
        tree_->CountSphereAccesses(query, result.kth_distance);
    EXPECT_EQ(result.accesses.leaf_accesses, sphere.leaf_accesses)
        << "trial " << trial;
  }
}

TEST_F(TreeKnnTest, KthDistanceMatchesExact) {
  const auto query = data_.row(7);
  const auto result = TreeKnnSearch(*tree_, data_, query, 4);
  // Exact 4th distance including the query point itself (it is in the
  // dataset, distance 0).
  const double exact = ExactKthDistance(data_, query, 4, -1.0);
  EXPECT_NEAR(result.kth_distance, exact, 1e-9);
}

TEST(KnnPairHeapTest, MatchesSortTruncateWithTies) {
  // Pairs with duplicate distances: retention and output order must equal
  // sorting everything and truncating to k (rows break the ties).
  const std::vector<std::pair<double, size_t>> pushed = {
      {4.0, 9}, {1.0, 5}, {4.0, 2}, {0.5, 7}, {1.0, 1}, {9.0, 0}};
  KnnPairHeap heap(3);
  EXPECT_TRUE(std::isinf(heap.KthSquared()));
  std::vector<std::pair<double, size_t>> expected = pushed;
  for (const auto& [d2, row] : pushed) heap.Push(d2, row);
  std::sort(expected.begin(), expected.end());
  expected.resize(3);
  EXPECT_DOUBLE_EQ(heap.KthSquared(), expected.back().first);
  EXPECT_EQ(heap.TakeSortedAscending(), expected);
}

TEST_F(TreeKnnTest, NeighborsIdenticalToExactKnnIncludingTies) {
  // The leaf loop's bounded pair heap must reproduce ExactKnn *exactly* —
  // same rows in the same order, not just equal distances — because both
  // resolve distance ties towards the lower row index.
  common::Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<float> query(data_.dim());
    if (trial % 2 == 0) {
      const auto row = data_.row(rng.NextBounded(data_.size()));
      std::copy(row.begin(), row.end(), query.begin());
    } else {
      for (auto& v : query) {
        v = static_cast<float>(rng.NextUniform(0.0, 1.0));
      }
    }
    for (const size_t k : {1u, 5u, 23u}) {
      const auto exact = ExactKnn(data_, query, k);
      const auto result = TreeKnnSearch(*tree_, data_, query, k);
      EXPECT_EQ(result.neighbors, exact) << "trial " << trial << " k " << k;
      EXPECT_EQ(result.kth_distance,
                std::sqrt(geometry::SquaredL2(data_.row(exact.back()), query)));
    }
  }
}

TEST_F(TreeKnnTest, NegativeRadiusIsFatal) {
  const auto query = data_.row(0);
  EXPECT_DEATH(tree_->CountSphereAccesses(query, -1.0), "non-negative");
  EXPECT_DEATH(tree_->CountSphereAccesses(query, std::nan("")),
               "non-negative");
}

TEST_F(TreeKnnTest, CountSphereLeafAccessesBatch) {
  common::Rng rng(3);
  data::Dataset centers(data_.dim());
  std::vector<double> radii;
  for (int i = 0; i < 5; ++i) {
    centers.Append(data_.row(rng.NextBounded(data_.size())));
    radii.push_back(0.05 * (i + 1));
  }
  io::IoStats io;
  const auto counts =
      CountSphereLeafAccesses(*tree_, centers, radii, &io);
  ASSERT_EQ(counts.size(), 5u);
  // I/O: every page touched (leaf + dir) is one random access.
  double total_leaves = 0;
  for (double c : counts) total_leaves += c;
  EXPECT_GE(static_cast<double>(io.page_transfers), total_leaves);
  EXPECT_EQ(io.page_seeks, io.page_transfers);
}

TEST_F(TreeKnnTest, GrowingRadiusIsMonotone) {
  const auto query = data_.row(100);
  size_t prev = 0;
  for (double r : {0.01, 0.05, 0.1, 0.5, 2.0}) {
    const auto count = tree_->CountSphereAccesses(query, r);
    EXPECT_GE(count.leaf_accesses, prev);
    prev = count.leaf_accesses;
  }
  // A huge radius reaches every leaf.
  const auto all = tree_->CountSphereAccesses(query, 1e6);
  EXPECT_EQ(all.leaf_accesses, tree_->num_leaves());
}

}  // namespace
}  // namespace hdidx::index
