#include "index/rstar.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

RStarTree::Options SmallOptions() {
  RStarTree::Options options;
  options.max_data_entries = 16;
  options.max_dir_entries = 8;
  return options;
}

TEST(RStarTreeTest, EmptyTree) {
  const data::Dataset data(3);
  RStarTree tree(&data, SmallOptions());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, FewPointsStayInRoot) {
  const auto data = hdidx::testing::SmallClustered(10, 3, 1);
  const RStarTree tree = RStarTree::BuildByInsertion(data, SmallOptions());
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, GrowsOnOverflow) {
  const auto data = hdidx::testing::SmallClustered(17, 3, 2);
  const RStarTree tree = RStarTree::BuildByInsertion(data, SmallOptions());
  EXPECT_GE(tree.height(), 2u);
  EXPECT_GE(tree.num_leaves(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, InvariantsAtScale) {
  const auto data = hdidx::testing::SmallClustered(5000, 6, 3);
  const RStarTree tree = RStarTree::BuildByInsertion(data, SmallOptions());
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Heights stay logarithmic: 5000/16 = 313 leaves, fanout >= ~3.2
  // effective -> height well under 10.
  EXPECT_LE(tree.height(), 8u);
  EXPECT_GE(tree.num_leaves(), 5000u / 16);
}

TEST(RStarTreeTest, SnapshotIsValidTree) {
  const auto data = hdidx::testing::SmallClustered(2000, 5, 4);
  const RStarTree dynamic = RStarTree::BuildByInsertion(data, SmallOptions());
  const RTree tree = dynamic.ToRTree();
  hdidx::testing::ExpectValidTree(tree, data, 1);
  EXPECT_EQ(tree.num_leaves(), dynamic.num_leaves());
}

TEST(RStarTreeTest, SnapshotKnnMatchesExactScan) {
  const auto data = hdidx::testing::SmallClustered(3000, 4, 5);
  const RTree tree =
      RStarTree::BuildByInsertion(data, SmallOptions()).ToRTree();
  common::Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto result = TreeKnnSearch(tree, data, query, 5);
    const double exact = ExactKthDistance(data, query, 5, -1.0);
    EXPECT_NEAR(result.kth_distance, exact, 1e-9);
  }
}

TEST(RStarTreeTest, LeafOccupancyAboveMinFill) {
  // R* guarantees pages stay above the min-fill fraction (except the root).
  const auto data = hdidx::testing::SmallClustered(4000, 4, 7);
  const RStarTree::Options options = SmallOptions();
  const RTree tree = RStarTree::BuildByInsertion(data, options).ToRTree();
  const auto min_fill = static_cast<uint32_t>(
      options.min_fill * static_cast<double>(options.max_data_entries));
  for (uint32_t id : tree.leaf_ids()) {
    if (id == tree.root()) continue;
    EXPECT_GE(tree.node(id).count + 1, min_fill) << "leaf " << id;
  }
}

TEST(RStarTreeTest, BetterPackedThanWorstCase) {
  // Average leaf occupancy lands in the usual R* band (>55%).
  const auto data = hdidx::testing::SmallClustered(6000, 4, 8);
  const RStarTree tree = RStarTree::BuildByInsertion(data, SmallOptions());
  const double avg_occupancy =
      static_cast<double>(tree.size()) /
      (static_cast<double>(tree.num_leaves()) * 16.0);
  EXPECT_GT(avg_occupancy, 0.55);
  EXPECT_LE(avg_occupancy, 1.0);
}

TEST(RStarTreeTest, InsertionOrderChangesLayoutNotContents) {
  const auto data = hdidx::testing::SmallClustered(800, 3, 9);
  // Reversed insertion order.
  std::vector<size_t> reversed(data.size());
  for (size_t i = 0; i < data.size(); ++i) reversed[i] = data.size() - 1 - i;
  const data::Dataset backwards = data.Select(reversed);

  const RTree a = RStarTree::BuildByInsertion(data, SmallOptions()).ToRTree();
  const RTree b =
      RStarTree::BuildByInsertion(backwards, SmallOptions()).ToRTree();
  // Same point population, (possibly) different page layout; both valid.
  hdidx::testing::ExpectValidTree(a, data, 1);
  hdidx::testing::ExpectValidTree(b, backwards, 1);
}

TEST(RStarTreeTest, DuplicatePointsHandled) {
  data::Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    data.Append(std::vector<float>{1.0f, 2.0f});
  }
  const RStarTree tree = RStarTree::BuildByInsertion(data, SmallOptions());
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace hdidx::index
