#include "index/pyramid.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

TEST(PyramidTest, PyramidValueBasics) {
  // Unit-square data so normalization is the identity (corners pin the
  // bounding box).
  data::Dataset data(2);
  data.Append(std::vector<float>{0.0f, 0.0f});
  data.Append(std::vector<float>{1.0f, 1.0f});
  const PyramidIndex index(&data, 4);

  // Left of center in dim 0: pyramid 0, height 0.4.
  EXPECT_NEAR(index.PyramidValue(std::vector<float>{0.1f, 0.5f}), 0.4, 1e-6);
  // Right of center in dim 0: pyramid 0 + d = 2.
  EXPECT_NEAR(index.PyramidValue(std::vector<float>{0.9f, 0.5f}), 2.4, 1e-6);
  // Below center in dim 1: pyramid 1.
  EXPECT_NEAR(index.PyramidValue(std::vector<float>{0.5f, 0.2f}), 1.3, 1e-6);
  // Above center in dim 1: pyramid 3.
  EXPECT_NEAR(index.PyramidValue(std::vector<float>{0.5f, 0.8f}), 3.3, 1e-6);
  // Center has height 0 (any pyramid).
  const double center = index.PyramidValue(std::vector<float>{0.5f, 0.5f});
  EXPECT_NEAR(center - std::floor(center), 0.0, 1e-6);
}

TEST(PyramidTest, QueryIntervalsCoverMatchingPoints) {
  // Every point inside the box must have its pyramid value inside one of
  // the box's intervals (the correctness lemma of the technique).
  const auto data = hdidx::testing::SmallClustered(2000, 5, 71);
  const PyramidIndex index(&data, 16);
  common::Rng rng(72);
  for (int trial = 0; trial < 20; ++trial) {
    const auto center = data.row(rng.NextBounded(data.size()));
    std::vector<float> lo(5), hi(5);
    const float r = static_cast<float>(rng.NextUniform(0.02, 0.3));
    for (size_t k = 0; k < 5; ++k) {
      lo[k] = center[k] - r;
      hi[k] = center[k] + r;
    }
    const geometry::BoundingBox box(lo, hi);

    // Normalized box for interval computation: replicate the index's
    // normalization through a probe round-trip (PyramidValue normalizes
    // internally, so compare via membership).
    io::IoStats io;
    index.RangeQueryPages(lo, hi, &io);
    const auto bounds = data.Bounds();
    std::vector<float> lo_n(5), hi_n(5);
    for (size_t k = 0; k < 5; ++k) {
      const double extent = bounds.Extent(k);
      lo_n[k] = static_cast<float>(
          std::clamp((lo[k] - bounds.lo()[k]) / extent, 0.0, 1.0));
      hi_n[k] = static_cast<float>(
          std::clamp((hi[k] - bounds.lo()[k]) / extent, 0.0, 1.0));
    }
    const auto intervals = index.QueryIntervals(lo_n, hi_n);
    for (size_t i = 0; i < data.size(); ++i) {
      if (!box.Contains(data.row(i))) continue;
      const double pv = index.PyramidValue(data.row(i));
      bool covered = false;
      for (const auto& [a, b] : intervals) {
        if (pv >= a - 1e-9 && pv <= b + 1e-9) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "point " << i << " pv " << pv;
    }
  }
}

TEST(PyramidTest, AtMostTwoDIntervals) {
  const auto data = hdidx::testing::SmallClustered(500, 4, 73);
  const PyramidIndex index(&data, 8);
  std::vector<float> lo(4, 0.1f), hi(4, 0.9f);
  EXPECT_LE(index.QueryIntervals(lo, hi).size(), 8u);
}

TEST(PyramidTest, KnnIsExact) {
  const auto data = hdidx::testing::SmallClustered(3000, 6, 74);
  const PyramidIndex index(&data, 25);
  common::Rng rng(75);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto result = index.SearchKnn(query, 5);
    ASSERT_EQ(result.neighbors.size(), 5u);
    EXPECT_NEAR(result.kth_distance,
                ExactKthDistance(data, query, 5, -1.0), 1e-9);
    EXPECT_GE(result.iterations, 1u);
    EXPECT_GT(result.page_reads, 0u);
  }
}

TEST(PyramidTest, PageAccountingSaneForFullSpaceQuery) {
  const auto data = hdidx::testing::SmallClustered(2000, 4, 76);
  const PyramidIndex index(&data, 20);
  const auto bounds = data.Bounds();
  io::IoStats io;
  const size_t pages = index.RangeQueryPages(
      std::vector<float>(bounds.lo()), std::vector<float>(bounds.hi()), &io);
  // The whole space touches every page exactly once (deduplicated).
  EXPECT_EQ(pages, index.num_pages());
  EXPECT_EQ(io.page_transfers, index.num_pages());
}

TEST(PyramidTest, SamplingPredictionOfRangePages) {
  // Section 4.7 applied to the pyramid technique: a mini pyramid index on
  // a zeta-sample with capacity C*zeta predicts the range-query page
  // counts of the full index.
  const auto data = hdidx::testing::SmallClustered(20000, 6, 77);
  const size_t capacity = 40;
  const PyramidIndex full(&data, capacity);

  common::Rng srng(78);
  std::vector<size_t> rows;
  srng.SampleIndices(data.size(), 5000, &rows);  // zeta = 0.25
  const data::Dataset sample = data.Select(rows);
  const PyramidIndex mini(&sample, capacity / 4);

  common::Rng rng(79);
  double measured_total = 0.0, predicted_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto center = data.row(rng.NextBounded(data.size()));
    std::vector<float> lo(6), hi(6);
    const float r = static_cast<float>(rng.NextUniform(0.05, 0.2));
    for (size_t k = 0; k < 6; ++k) {
      lo[k] = center[k] - r;
      hi[k] = center[k] + r;
    }
    measured_total +=
        static_cast<double>(full.RangeQueryPages(lo, hi, nullptr));
    predicted_total +=
        static_cast<double>(mini.RangeQueryPages(lo, hi, nullptr));
  }
  const double rel = (predicted_total - measured_total) / measured_total;
  EXPECT_LT(std::abs(rel), 0.25) << "relative error " << rel;
}

}  // namespace
}  // namespace hdidx::index
