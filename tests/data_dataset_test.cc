#include "data/dataset.h"

#include <vector>

#include "gtest/gtest.h"

namespace hdidx::data {
namespace {

TEST(DatasetTest, EmptyAndZeroInitialized) {
  Dataset empty(4);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.dim(), 4u);

  Dataset zeros(3, 2);
  EXPECT_EQ(zeros.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(zeros.row(i)[0], 0.0f);
    EXPECT_EQ(zeros.row(i)[1], 0.0f);
  }
}

TEST(DatasetTest, FromBufferAndRowAccess) {
  Dataset d({1, 2, 3, 4, 5, 6}, 3);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.row(0)[2], 3.0f);
  EXPECT_EQ(d.row(1)[0], 4.0f);
}

TEST(DatasetTest, AppendGrows) {
  Dataset d(2);
  d.Append(std::vector<float>{1, 2});
  d.Append(std::vector<float>{3, 4});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.row(1)[1], 4.0f);
}

TEST(DatasetTest, MutableRowWritesThrough) {
  Dataset d(2, 2);
  d.mutable_row(1)[0] = 9.0f;
  EXPECT_EQ(d.row(1)[0], 9.0f);
  EXPECT_EQ(d.data()[2], 9.0f);
}

TEST(DatasetTest, BoundsCoverAllRows) {
  Dataset d({0, 5, 2, -1, 1, 3}, 2);
  const auto box = d.Bounds();
  EXPECT_EQ(box.lo(), (std::vector<float>{0, -1}));
  EXPECT_EQ(box.hi(), (std::vector<float>{2, 5}));
}

TEST(DatasetTest, SelectPreservesOrderAndValues) {
  Dataset d({10, 20, 30, 40, 50, 60}, 2);
  const Dataset sel = d.Select({2, 0});
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel.row(0)[0], 50.0f);
  EXPECT_EQ(sel.row(1)[0], 10.0f);
}

TEST(DatasetTest, SelectWithDuplicates) {
  Dataset d({1, 2, 3, 4}, 2);
  const Dataset sel = d.Select({1, 1, 1});
  ASSERT_EQ(sel.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(sel.row(i)[1], 4.0f);
}

TEST(DatasetTest, ProjectPrefixKeepsLeadingDims) {
  Dataset d({1, 2, 3, 4, 5, 6}, 3);
  const Dataset proj = d.ProjectPrefix(2);
  EXPECT_EQ(proj.dim(), 2u);
  ASSERT_EQ(proj.size(), 2u);
  EXPECT_EQ(proj.row(0)[0], 1.0f);
  EXPECT_EQ(proj.row(0)[1], 2.0f);
  EXPECT_EQ(proj.row(1)[0], 4.0f);
}

TEST(DatasetTest, ProjectFullWidthIsIdentity) {
  Dataset d({1, 2, 3, 4}, 2);
  EXPECT_TRUE(d.ProjectPrefix(2) == d);
}

}  // namespace
}  // namespace hdidx::data
