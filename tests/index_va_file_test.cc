#include "index/va_file.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

TEST(VaFileTest, QuantizeRespectsBoundaries) {
  data::Dataset data(1);
  for (int i = 0; i < 256; ++i) {
    data.Append(std::vector<float>{static_cast<float>(i)});
  }
  VaFile::Options options;
  options.bits = 2;  // 4 slices of 64 points
  const VaFile va(&data, options);
  EXPECT_EQ(va.Quantize(0, 0.0f), 0u);
  EXPECT_EQ(va.Quantize(0, 63.0f), 0u);
  EXPECT_EQ(va.Quantize(0, 64.0f), 1u);
  EXPECT_EQ(va.Quantize(0, 255.0f), 3u);
  // Out-of-range values clamp to the edge slices.
  EXPECT_EQ(va.Quantize(0, -100.0f), 0u);
  EXPECT_EQ(va.Quantize(0, 1e6f), 3u);
}

TEST(VaFileTest, BoundsBracketTrueDistance) {
  const auto data = hdidx::testing::SmallClustered(2000, 6, 1);
  VaFile::Options options;
  options.bits = 4;
  const VaFile va(&data, options);
  common::Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t q = rng.NextBounded(data.size());
    const size_t p = rng.NextBounded(data.size());
    const double exact = geometry::SquaredL2(data.row(q), data.row(p));
    EXPECT_LE(va.LowerBoundSq(data.row(q), p), exact + 1e-9);
    EXPECT_GE(va.UpperBoundSq(data.row(q), p), exact - 1e-9);
  }
}

TEST(VaFileTest, SearchIsExact) {
  const auto data = hdidx::testing::SmallClustered(3000, 8, 3);
  VaFile::Options options;
  options.bits = 6;
  const VaFile va(&data, options);
  const io::DiskModel disk;
  common::Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto result = va.SearchKnn(query, 5, disk);
    const double exact = ExactKthDistance(data, query, 5, -1.0);
    EXPECT_NEAR(result.kth_distance, exact, 1e-9) << "trial " << trial;
    ASSERT_EQ(result.neighbors.size(), 5u);
    // Neighbors ascending by distance.
    double prev = -1.0;
    for (size_t row : result.neighbors) {
      const double d = geometry::L2(data.row(row), query);
      EXPECT_GE(d, prev - 1e-12);
      prev = d;
    }
  }
}

TEST(VaFileTest, MoreBitsFewerCandidates) {
  const auto data = hdidx::testing::SmallClustered(4000, 8, 5);
  const io::DiskModel disk;
  common::Rng rng(6);
  const auto query = data.row(rng.NextBounded(data.size()));
  size_t prev_candidates = data.size() + 1;
  for (uint8_t bits : {2, 4, 6, 8}) {
    VaFile::Options options;
    options.bits = bits;
    const VaFile va(&data, options);
    const auto result = va.SearchKnn(query, 10, disk);
    EXPECT_LE(result.candidates, prev_candidates) << "bits " << int(bits);
    prev_candidates = result.candidates;
  }
  // At 8 bits the filter should prune the vast majority of points.
  EXPECT_LT(prev_candidates, data.size() / 10);
}

TEST(VaFileTest, IoChargesScanPlusCandidates) {
  const auto data = hdidx::testing::SmallClustered(5000, 16, 7);
  VaFile::Options options;
  options.bits = 8;
  const VaFile va(&data, options);
  const io::DiskModel disk;
  const auto result = va.SearchKnn(data.row(0), 3, disk);
  const size_t approx_pages =
      (data.size() * va.ApproximationBytes() + disk.page_bytes - 1) /
      disk.page_bytes;
  EXPECT_EQ(result.io.page_transfers, approx_pages + result.candidates);
  EXPECT_EQ(result.io.page_seeks, 1 + result.candidates);
}

TEST(VaFileTest, ApproximationBytesRoundUp) {
  const auto data = hdidx::testing::SmallClustered(10, 5, 8);
  VaFile::Options options;
  options.bits = 6;  // 30 bits -> 4 bytes
  const VaFile va(&data, options);
  EXPECT_EQ(va.ApproximationBytes(), 4u);
}

TEST(VaFileTest, DuplicateHeavyDimension) {
  data::Dataset data(2);
  common::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    data.Append(std::vector<float>{
        0.5f, static_cast<float>(rng.NextDouble())});
  }
  VaFile::Options options;
  options.bits = 4;
  const VaFile va(&data, options);  // constant dim 0 must not crash
  const auto result = va.SearchKnn(data.row(0), 3, io::DiskModel{});
  EXPECT_EQ(result.neighbors.size(), 3u);
}

}  // namespace
}  // namespace hdidx::index
