#include "core/compensation.h"

#include <cmath>

#include "common/random.h"
#include "geometry/bounding_box.h"
#include "gtest/gtest.h"

namespace hdidx::core {
namespace {

TEST(CompensationTest, NoSamplingNoGrowth) {
  EXPECT_DOUBLE_EQ(CompensationGrowthPerDim(33, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(CompensationGrowthPerDim(33, 1.5), 1.0);
  EXPECT_DOUBLE_EQ(CompensationDelta(33, 1.0, 60), 1.0);
}

TEST(CompensationTest, MatchesTheoremFormula) {
  const double c = 40.0, zeta = 0.25;
  const double expected =
      ((c * zeta + 1.0) * (c - 1.0)) / ((c * zeta - 1.0) * (c + 1.0));
  EXPECT_DOUBLE_EQ(CompensationGrowthPerDim(c, zeta), expected);
  EXPECT_DOUBLE_EQ(CompensationDelta(c, zeta, 5), std::pow(expected, 5.0));
}

TEST(CompensationTest, GrowthExceedsOneForRealSampling) {
  for (double zeta : {0.05, 0.1, 0.3, 0.7, 0.99}) {
    EXPECT_GT(CompensationGrowthPerDim(50, zeta), 1.0) << zeta;
  }
}

TEST(CompensationTest, MonotoneInSamplingFraction) {
  // Heavier sampling (smaller zeta) needs more growth.
  double prev = CompensationGrowthPerDim(100, 0.9);
  for (double zeta : {0.5, 0.2, 0.1, 0.05}) {
    const double g = CompensationGrowthPerDim(100, zeta);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(CompensationTest, ApproachesOneAsZetaApproachesOne) {
  EXPECT_NEAR(CompensationGrowthPerDim(1000, 0.999), 1.0, 1e-4);
}

TEST(CompensationTest, LargeCapacityLimit) {
  // As C -> inf with fixed zeta, growth -> 1 (big pages barely shrink).
  EXPECT_NEAR(CompensationGrowthPerDim(1e7, 0.1), 1.0, 1e-5);
  // Small capacity shrinks a lot: growth well above 1.
  EXPECT_GT(CompensationGrowthPerDim(10, 0.2), 1.5);
}

TEST(CompensationTest, DegenerateInputsClamped) {
  // C*zeta <= 1: growth stays finite and positive.
  const double g = CompensationGrowthPerDim(10, 0.05);
  EXPECT_GT(g, 1.0);
  EXPECT_LT(g, 5.0);
  EXPECT_GT(CompensationGrowthPerDim(1.0, 0.5), 0.0);
}

TEST(CompensationTest, EmpiricalShrinkageMatchesTheorem) {
  // Monte-Carlo validation of Theorem 1: the average MBR extent of C*zeta
  // uniform points over the extent of C points matches the predicted
  // per-dimension shrinkage 1/growth.
  common::Rng rng(1);
  const int kTrials = 3000;
  const size_t c = 64;
  const double zeta = 0.25;
  const size_t c_sampled = static_cast<size_t>(c * zeta);
  double extent_full = 0.0, extent_sampled = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    double lo_f = 1.0, hi_f = 0.0;
    double lo_s = 1.0, hi_s = 0.0;
    for (size_t i = 0; i < c; ++i) {
      const double x = rng.NextDouble();
      lo_f = std::min(lo_f, x);
      hi_f = std::max(hi_f, x);
      if (i < c_sampled) {  // the first c*zeta points are a uniform sample
        lo_s = std::min(lo_s, x);
        hi_s = std::max(hi_s, x);
      }
    }
    extent_full += hi_f - lo_f;
    extent_sampled += hi_s - lo_s;
  }
  const double measured_ratio = extent_full / extent_sampled;
  const double predicted_ratio =
      CompensationGrowthPerDim(static_cast<double>(c), zeta);
  EXPECT_NEAR(measured_ratio, predicted_ratio, 0.01);
}

TEST(CompensationTest, RestoresBoxVolume) {
  // Growing a box by the per-dim factor multiplies its volume by delta.
  geometry::BoundingBox box({0, 0, 0}, {1, 2, 3});
  const double volume = box.Volume();
  const double growth = CompensationGrowthPerDim(33, 0.1);
  box.InflateAboutCenter(growth);
  const double expected = volume * CompensationDelta(33, 0.1, 3);
  EXPECT_NEAR(box.Volume(), expected, 1e-4 * expected);
}

}  // namespace
}  // namespace hdidx::core
