#include "test_util.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"

namespace hdidx::testing {

data::Dataset SmallClustered(size_t n, size_t dim, uint64_t seed) {
  common::Rng rng(seed);
  data::ClusteredConfig config;
  config.num_points = n;
  config.dim = dim;
  config.num_clusters = 8;
  config.intrinsic_dim = std::max<double>(2.0, static_cast<double>(dim) / 4.0);
  return data::GenerateClustered(config, &rng);
}

void ExpectValidTree(const index::RTree& tree, const data::Dataset& data,
                     size_t expected_leaf_level) {
  ASSERT_FALSE(tree.empty());
  std::vector<int> seen(data.size(), 0);
  size_t total_leaf_points = 0;

  for (uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const index::RTreeNode& node = tree.node(id);
    if (node.is_leaf()) {
      EXPECT_EQ(node.level, expected_leaf_level) << "leaf " << id;
      EXPECT_GT(node.count, 0u) << "empty leaf " << id;
      total_leaf_points += node.count;
      for (uint32_t pos = node.start; pos < node.start + node.count; ++pos) {
        const uint32_t row = tree.OrderedIndex(pos);
        ASSERT_LT(row, data.size());
        ++seen[row];
        EXPECT_TRUE(node.box.Contains(data.row(row)))
            << "leaf " << id << " does not contain its point " << row;
      }
    } else {
      for (uint32_t child : node.children) {
        ASSERT_LT(child, tree.num_nodes());
        const index::RTreeNode& child_node = tree.node(child);
        EXPECT_EQ(child_node.level + 1, node.level)
            << "level mismatch under node " << id;
        EXPECT_TRUE(
            geometry::BoundingBox::Union(node.box, child_node.box) == node.box)
            << "directory box " << id << " does not cover child " << child;
      }
    }
  }

  EXPECT_EQ(total_leaf_points, data.size());
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }))
      << "some point is missing or duplicated across leaves";
}

void ExpectTreesIdentical(const index::RTree& expected,
                          const index::RTree& actual, const char* what) {
  ASSERT_EQ(expected.num_nodes(), actual.num_nodes()) << what;
  ASSERT_EQ(expected.dim(), actual.dim()) << what;
  EXPECT_EQ(expected.root(), actual.root()) << what;
  EXPECT_EQ(expected.leaf_ids(), actual.leaf_ids()) << what;
  EXPECT_EQ(expected.order(), actual.order()) << what;
  for (uint32_t id = 0; id < expected.num_nodes(); ++id) {
    const index::RTreeNode& e = expected.node(id);
    const index::RTreeNode& a = actual.node(id);
    EXPECT_EQ(e.level, a.level) << what << ", node " << id;
    EXPECT_EQ(e.start, a.start) << what << ", node " << id;
    EXPECT_EQ(e.count, a.count) << what << ", node " << id;
    // children is a span into each tree's arena; compare element-wise.
    ASSERT_EQ(e.children.size(), a.children.size()) << what << ", node " << id;
    EXPECT_TRUE(std::equal(e.children.begin(), e.children.end(),
                           a.children.begin()))
        << what << ", node " << id;
    EXPECT_EQ(e.pages, a.pages) << what << ", node " << id;
    // Exact float equality: "bit-identical" means the very same MBRs.
    EXPECT_TRUE(e.box.lo() == a.box.lo() && e.box.hi() == a.box.hi())
        << what << ", node " << id << " has a different MBR";
  }
  EXPECT_EQ(index::TreeLayoutDigest(expected), index::TreeLayoutDigest(actual))
      << what;
}

}  // namespace hdidx::testing
