#include "common/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace hdidx::common {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double min_v = 1.0, max_v = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_LT(min_v, 0.05);
  EXPECT_GT(max_v, 0.95);
}

TEST(RngTest, NextUniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleIndicesExactSizeSortedUnique) {
  Rng rng(19);
  std::vector<size_t> out;
  rng.SampleIndices(1000, 100, &out);
  ASSERT_EQ(out.size(), 100u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(std::set<size_t>(out.begin(), out.end()).size(), 100u);
  EXPECT_LT(out.back(), 1000u);
}

TEST(RngTest, SampleIndicesWholePopulationWhenKExceedsN) {
  Rng rng(23);
  std::vector<size_t> out;
  rng.SampleIndices(10, 50, &out);
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

TEST(RngTest, SampleIndicesUniformCoverage) {
  // Each index should appear with probability k/n over repeated draws.
  std::vector<int> counts(50, 0);
  for (uint64_t seed = 0; seed < 400; ++seed) {
    Rng rng(seed);
    std::vector<size_t> out;
    rng.SampleIndices(50, 10, &out);
    for (size_t i : out) ++counts[i];
  }
  // Expected 80 appearances each; allow generous slack.
  for (int c : counts) {
    EXPECT_GT(c, 40);
    EXPECT_LT(c, 130);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace hdidx::common
