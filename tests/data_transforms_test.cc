#include "data/transforms.h"

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "gtest/gtest.h"

#include "data/generators.h"

namespace hdidx::data {
namespace {

Dataset GenerateTestCloud(common::Rng* rng) {
  ClusteredConfig config;
  config.num_points = 500;
  config.dim = 5;
  config.num_clusters = 3;
  return GenerateClustered(config, rng);
}

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  const std::vector<double> m = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  std::vector<double> values, vectors;
  JacobiEigenSymmetric(m, 3, &values, &vectors);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 2.0, 1e-10);
  EXPECT_NEAR(values[2], 1.0, 1e-10);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1), (1,-1).
  const std::vector<double> m = {2, 1, 1, 2};
  std::vector<double> values, vectors;
  JacobiEigenSymmetric(m, 2, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // First eigenvector proportional to (1,1).
  EXPECT_NEAR(std::abs(vectors[0]), std::abs(vectors[1]), 1e-8);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  // A = V^T diag(e) V must equal the input for a random symmetric matrix.
  common::Rng rng(5);
  const size_t n = 6;
  std::vector<double> m(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      m[i * n + j] = m[j * n + i] = rng.NextGaussian();
    }
  }
  std::vector<double> values, vectors;
  JacobiEigenSymmetric(m, n, &values, &vectors);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < n; ++k) {
        sum += vectors[k * n + i] * values[k] * vectors[k * n + j];
      }
      EXPECT_NEAR(sum, m[i * n + j], 1e-8) << "(" << i << "," << j << ")";
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  common::Rng rng(6);
  const size_t n = 5;
  std::vector<double> m(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      m[i * n + j] = m[j * n + i] = rng.NextDouble();
    }
  }
  std::vector<double> values, vectors;
  JacobiEigenSymmetric(m, n, &values, &vectors);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) {
        dot += vectors[a * n + k] * vectors[b * n + k];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(KltTest, DecorrelatesAndOrdersVariance) {
  // Strongly correlated 3-d data: y = 2x + noise, z independent small.
  common::Rng rng(7);
  Dataset d(3);
  for (int i = 0; i < 3000; ++i) {
    const float x = static_cast<float>(rng.NextGaussian());
    const float y = 2.0f * x + 0.1f * static_cast<float>(rng.NextGaussian());
    const float z = 0.05f * static_cast<float>(rng.NextGaussian());
    d.Append(std::vector<float>{x, y, z});
  }
  const KltTransform klt = KltTransform::Fit(d);
  const Dataset t = klt.Apply(d);

  // Eigenvalues decreasing.
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_GE(klt.eigenvalues()[i - 1], klt.eigenvalues()[i]);
  }
  // Output components decorrelated.
  std::vector<double> c0, c1;
  for (size_t i = 0; i < t.size(); ++i) {
    c0.push_back(t.row(i)[0]);
    c1.push_back(t.row(i)[1]);
  }
  EXPECT_LT(std::abs(common::PearsonCorrelation(c0, c1)), 0.05);
  // Output variance along component i equals eigenvalue i.
  EXPECT_NEAR(common::Variance(c0), klt.eigenvalues()[0],
              0.02 * klt.eigenvalues()[0]);
}

TEST(KltTest, PreservesPairwiseDistances) {
  // KLT is a rotation plus translation: distances are invariant.
  common::Rng rng(8);
  const Dataset d = GenerateTestCloud(&rng);
  const KltTransform klt = KltTransform::Fit(d);
  const Dataset t = klt.Apply(d);
  for (size_t i = 0; i + 1 < d.size(); i += 7) {
    double orig = 0.0, trans = 0.0;
    for (size_t k = 0; k < d.dim(); ++k) {
      orig += (d.row(i)[k] - d.row(i + 1)[k]) * (d.row(i)[k] - d.row(i + 1)[k]);
      trans +=
          (t.row(i)[k] - t.row(i + 1)[k]) * (t.row(i)[k] - t.row(i + 1)[k]);
    }
    EXPECT_NEAR(orig, trans, 1e-3 * (orig + 1.0));
  }
}

TEST(DftTest, ConstantSignalIsPureDc) {
  Dataset d(1, 8);
  for (size_t k = 0; k < 8; ++k) d.mutable_row(0)[k] = 3.0f;
  const Dataset t = DftTransform(d);
  // DC = sum / sqrt(d) = 24/sqrt(8); all other outputs ~0.
  EXPECT_NEAR(t.row(0)[0], 24.0 / std::sqrt(8.0), 1e-4);
  for (size_t k = 1; k < 8; ++k) EXPECT_NEAR(t.row(0)[k], 0.0, 1e-4);
}

TEST(DftTest, SingleToneLandsInItsBin) {
  const size_t n = 16;
  Dataset d(1, n);
  for (size_t k = 0; k < n; ++k) {
    d.mutable_row(0)[k] =
        static_cast<float>(std::cos(2.0 * M_PI * 2.0 * k / n));
  }
  const Dataset t = DftTransform(d);
  // Layout: [Re F0, Re F1, Im F1, Re F2, Im F2, ...]; frequency-2 real slot
  // is index 3. |Re F2| = n/2 / sqrt(n) = sqrt(n)/2.
  EXPECT_NEAR(std::abs(t.row(0)[3]), std::sqrt(static_cast<double>(n)) / 2.0,
              1e-3);
  EXPECT_NEAR(t.row(0)[0], 0.0, 1e-3);  // no DC
  EXPECT_NEAR(t.row(0)[1], 0.0, 1e-3);  // no f=1 energy
}

}  // namespace
}  // namespace hdidx::data
