#include "data/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"

namespace hdidx::data {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIoTest, RoundTrip) {
  common::Rng rng(1);
  const Dataset original = GenerateUniform(257, 7, &rng);
  const std::string path = TempPath("roundtrip.hdx");
  std::string error;
  ASSERT_TRUE(WriteDataset(original, path, &error)) << error;
  const auto loaded = ReadDataset(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(*loaded == original);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyDatasetRoundTrip) {
  const Dataset empty(3);
  const std::string path = TempPath("empty.hdx");
  std::string error;
  ASSERT_TRUE(WriteDataset(empty, path, &error)) << error;
  const auto loaded = ReadDataset(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->dim(), 3u);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileFails) {
  std::string error;
  const auto loaded = ReadDataset(TempPath("does_not_exist.hdx"), &error);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DatasetIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.hdx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAHDIXFILE____________________";
  }
  std::string error;
  EXPECT_FALSE(ReadDataset(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TruncatedPayloadRejected) {
  common::Rng rng(2);
  const Dataset original = GenerateUniform(100, 4, &rng);
  const std::string path = TempPath("truncated.hdx");
  std::string error;
  ASSERT_TRUE(WriteDataset(original, path, &error));
  // Chop the file short.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(ReadDataset(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, UnwritablePathFails) {
  const Dataset d(1, 2);
  std::string error;
  EXPECT_FALSE(WriteDataset(d, "/nonexistent_dir_xyz/file.hdx", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace hdidx::data
