// hdidx_serve: a long-running sharded prediction server speaking
// line-delimited JSON over stdin/stdout (see src/service/protocol.h).
//
// Usage:
//   hdidx_serve [--shards 2] [--threads 8] [--cache-entries 64]
//               [--workload-cache-entries 32]
//               [--preload name=path[,name=path...]]
//
// Datasets are loaded once (at startup via --preload, or at runtime via
// {"op":"load",...}) and pinned; consecutive predict lines form a batch,
// flushed by a blank line, a non-predict op, or EOF. Responses are one JSON
// line each, in request order. {"op":"shutdown"} (or EOF) exits cleanly.
//
// Example session:
//   $ hdidx_serve --shards 2 <<'EOF'
//   {"op":"load","dataset":"d","path":"data.hdx"}
//   {"op":"predict","dataset":"d","method":"resampled","memory":1000,"k":5}
//   {"op":"predict","dataset":"d","method":"resampled","memory":1000,"k":5}
//
//   {"op":"stats"}
//   {"op":"shutdown"}
//   EOF

#include <cstdio>
#include <iostream>
#include <string>

#include "flags.h"
#include "service/prediction_service.h"
#include "service/protocol.h"
#include "service/server.h"

constexpr char kUsage[] =
    "usage: hdidx_serve [--shards N] [--threads T] [--cache-entries E]\n"
    "                   [--workload-cache-entries E]\n"
    "                   [--preload name=path[,name=path...]]\n";

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(argc, argv,
                           {"shards", "threads", "cache-entries",
                            "workload-cache-entries", "preload"});

  service::ServiceOptions options;
  options.num_shards = flags.GetUint("shards", 1);
  options.total_threads = flags.GetUint("threads", 0);
  options.result_cache_entries = flags.GetUint("cache-entries", 64);
  options.workload_cache_entries =
      flags.GetUint("workload-cache-entries", 32);
  const std::string preload = flags.GetString("preload", "");
  flags.ExitOnError(kUsage);

  service::PredictionService svc(options);

  // --preload name=path[,name=path...]: load before announcing readiness so
  // the first request never pays a dataset load.
  size_t start = 0;
  while (start < preload.size()) {
    size_t comma = preload.find(',', start);
    if (comma == std::string::npos) comma = preload.size();
    const std::string item = preload.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: --preload item '%s' is not name=path\n",
                   item.c_str());
      return 2;
    }
    std::string error;
    if (!svc.registry().LoadFile(item.substr(0, eq), item.substr(eq + 1),
                                 &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  std::cout << "{\"op\":\"ready\",\"shards\":" << svc.num_shards()
            << ",\"threads_per_shard\":" << svc.threads_per_shard()
            << ",\"datasets\":" << svc.registry().size() << "}\n";
  std::cout.flush();

  service::RunServer(std::cin, std::cout, &svc);
  return 0;
}
