// hdidx_serve: a long-running sharded prediction server.
//
// Default transport: the epoll-based async server speaking the
// length-prefixed binary wire protocol over TCP (see src/service/wire.h,
// src/service/async_server.h). On startup it prints one JSON ready line
// carrying the bound port, then serves until a shutdown frame:
//   {"op":"ready","transport":"wire","port":43215,"shards":2,...}
//
// Debug transport: --json speaks the original line-delimited flat-JSON
// protocol over stdin/stdout (see src/service/protocol.h) — handy for
// manual sessions and `hdidx_client --json`.
//
// Usage:
//   hdidx_serve [--shards 2] [--threads 8] [--cache-entries 64]
//               [--workload-cache-entries 32]
//               [--preload name=path[,name=path...]]
//               [--port 0] [--host 127.0.0.1] [--reactors 1]
//               [--queue-capacity 64] [--retry-after-ms 50]
//               [--json]
//
// Datasets are loaded once (at startup via --preload, or at runtime via a
// load request) and pinned. --port 0 binds an ephemeral port — read it
// from the ready line. --queue-capacity bounds each shard's admission
// queue; predicts beyond it are answered with load-shed frames carrying
// the --retry-after-ms hint.
//
// Example JSON session:
//   $ hdidx_serve --shards 2 --json <<'EOF'
//   {"op":"load","dataset":"d","path":"data.hdx"}
//   {"op":"predict","dataset":"d","method":"resampled","memory":1000,"k":5}
//   {"op":"predict","dataset":"d","method":"resampled","memory":1000,"k":5}
//
//   {"op":"stats"}
//   {"op":"shutdown"}
//   EOF

#include <cstdio>
#include <iostream>
#include <string>

#include "flags.h"
#include "service/async_server.h"
#include "service/prediction_service.h"
#include "service/protocol.h"
#include "service/server.h"

constexpr char kUsage[] =
    "usage: hdidx_serve [--shards N] [--threads T] [--cache-entries E]\n"
    "                   [--workload-cache-entries E]\n"
    "                   [--preload name=path[,name=path...]]\n"
    "                   [--port P] [--host H] [--reactors R]\n"
    "                   [--queue-capacity C] [--retry-after-ms MS]\n"
    "                   [--json]\n";

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(argc, argv,
                           {"shards", "threads", "cache-entries",
                            "workload-cache-entries", "preload", "port",
                            "host", "reactors", "queue-capacity",
                            "retry-after-ms", "json"});

  service::ServiceOptions options;
  options.num_shards = flags.GetUint("shards", 1);
  options.total_threads = flags.GetUint("threads", 0);
  options.result_cache_entries = flags.GetUint("cache-entries", 64);
  options.workload_cache_entries =
      flags.GetUint("workload-cache-entries", 32);
  const std::string preload = flags.GetString("preload", "");
  const bool json = flags.GetBool("json");
  service::AsyncServerOptions async_options;
  async_options.host = flags.GetString("host", "127.0.0.1");
  async_options.port = static_cast<uint16_t>(flags.GetUint("port", 0));
  async_options.num_reactors = flags.GetUint("reactors", 1);
  async_options.shard_queue_capacity = flags.GetUint("queue-capacity", 64);
  async_options.retry_after_ms =
      static_cast<uint32_t>(flags.GetUint("retry-after-ms", 50));
  flags.ExitOnError(kUsage);

  service::PredictionService svc(options);

  // --preload name=path[,name=path...]: load before announcing readiness so
  // the first request never pays a dataset load.
  size_t start = 0;
  while (start < preload.size()) {
    size_t comma = preload.find(',', start);
    if (comma == std::string::npos) comma = preload.size();
    const std::string item = preload.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: --preload item '%s' is not name=path\n",
                   item.c_str());
      return 2;
    }
    std::string error;
    if (!svc.registry().LoadFile(item.substr(0, eq), item.substr(eq + 1),
                                 &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }

  if (json) {
    std::cout << "{\"op\":\"ready\",\"transport\":\"json\",\"shards\":"
              << svc.num_shards()
              << ",\"threads_per_shard\":" << svc.threads_per_shard()
              << ",\"datasets\":" << svc.registry().size() << "}\n";
    std::cout.flush();
    service::RunServer(std::cin, std::cout, &svc);
    return 0;
  }

  service::AsyncServer server(&svc, async_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::cout << "{\"op\":\"ready\",\"transport\":\"wire\",\"port\":"
            << server.port() << ",\"shards\":" << svc.num_shards()
            << ",\"threads_per_shard\":" << svc.threads_per_shard()
            << ",\"datasets\":" << svc.registry().size() << "}\n";
  std::cout.flush();
  server.Wait();
  return 0;
}
