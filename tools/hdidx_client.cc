// hdidx_client: batch client for hdidx_serve.
//
// Default transport: spawns the server (--serve "cmd"), reads the ready
// line to learn the bound TCP port, then runs the session over the binary
// wire protocol (src/service/wire.h) — load, a pipelined predict batch
// (all request frames written before any response is read), an optional
// warm repeat of the same batch that must be served from the mini-index
// cache, stats, shutdown. With --json it appends --json to the server
// command and speaks the legacy line protocol over the pipes instead; the
// session, health checks, and summary line are identical either way.
// Exits 0 only on a fully healthy session (all predictions ok, warm batch
// hit the cache, clean shutdown), so CI can use it as a one-command smoke
// test of either transport.
//
// Usage:
//   hdidx_client --serve "./hdidx_serve --shards 2" --data data.hdx
//                [--dataset d] [--method resampled] [--memory 10000]
//                [--k 10] [--queries 100] [--requests 4] [--seed 1]
//                [--repeat true] [--json] [--emit]
//
// --emit prints the JSON request lines to stdout instead of spawning a
// server (for manual piping: hdidx_client --emit ... | hdidx_serve --json).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "flags.h"
#include "service/protocol.h"
#include "service/wire.h"

namespace {

using hdidx::service::JsonQuote;
namespace wire = hdidx::service::wire;

constexpr char kUsage[] =
    "usage: hdidx_client --serve CMD --data FILE [--dataset NAME]\n"
    "                    [--method mini|cutoff|resampled] [--memory M]\n"
    "                    [--k K] [--queries Q] [--requests R] [--seed S]\n"
    "                    [--repeat BOOL] [--json] [--emit]\n";

struct SessionSpec {
  std::string dataset;
  std::string data_path;
  std::string method;
  uint64_t memory = 0;
  uint64_t k = 0;
  uint64_t queries = 0;
  uint64_t requests = 0;
  uint64_t seed = 0;
  bool repeat = true;
};

/// Session health tally, shared by both transports; the summary line and
/// the exit status derive from it.
struct SessionTally {
  bool load_ok = false;
  bool shutdown_ok = false;
  uint64_t predict_ok = 0;
  uint64_t predict_failed = 0;
  uint64_t cache_hits = 0;
  uint64_t with_prediction = 0;
};

std::vector<std::string> ComposeLines(const SessionSpec& spec) {
  std::vector<std::string> lines;
  lines.push_back("{\"op\":\"load\",\"dataset\":" + JsonQuote(spec.dataset) +
                  ",\"path\":" + JsonQuote(spec.data_path) + "}");
  const auto batch = [&](std::vector<std::string>* out) {
    for (uint64_t i = 0; i < spec.requests; ++i) {
      out->push_back(
          "{\"op\":\"predict\",\"dataset\":" + JsonQuote(spec.dataset) +
          ",\"method\":" + JsonQuote(spec.method) +
          ",\"memory\":" + std::to_string(spec.memory) +
          ",\"k\":" + std::to_string(spec.k) +
          ",\"num_queries\":" + std::to_string(spec.queries) +
          ",\"seed\":" + std::to_string(spec.seed + i) + "}");
    }
    out->push_back("");  // flush the batch
  };
  batch(&lines);
  if (spec.repeat) batch(&lines);  // warm pass: must hit the cache
  lines.push_back("{\"op\":\"stats\"}");
  lines.push_back("{\"op\":\"shutdown\"}");
  return lines;
}

/// Spawns `command` via /bin/sh with stdin/stdout piped; returns false on
/// fork/pipe failure.
bool Spawn(const std::string& command, pid_t* pid, FILE** to_child,
           FILE** from_child) {
  int in_pipe[2];   // parent -> child
  int out_pipe[2];  // child -> parent
  if (pipe(in_pipe) != 0) return false;
  if (pipe(out_pipe) != 0) {
    close(in_pipe[0]);
    close(in_pipe[1]);
    return false;
  }
  *pid = fork();
  if (*pid < 0) return false;
  if (*pid == 0) {
    dup2(in_pipe[0], STDIN_FILENO);
    dup2(out_pipe[1], STDOUT_FILENO);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(), nullptr);
    std::perror("exec");
    _exit(127);
  }
  close(in_pipe[0]);
  close(out_pipe[1]);
  *to_child = fdopen(in_pipe[1], "w");
  *from_child = fdopen(out_pipe[0], "r");
  return *to_child != nullptr && *from_child != nullptr;
}

bool Contains(const std::string& line, const char* needle) {
  return line.find(needle) != std::string::npos;
}

// --- wire transport -----------------------------------------------------

/// Reads lines from the server's stdout until the ready line and parses
/// the bound port out of it. Returns 0 on failure.
uint16_t ReadReadyPort(FILE* from_child) {
  char buffer[1 << 14];
  while (std::fgets(buffer, sizeof(buffer), from_child) != nullptr) {
    const std::string line(buffer);
    if (!Contains(line, "\"op\":\"ready\"")) continue;
    const size_t pos = line.find("\"port\":");
    if (pos == std::string::npos) {
      std::fprintf(stderr,
                   "error: ready line has no port (server in --json "
                   "mode?): %s",
                   line.c_str());
      return 0;
    }
    const unsigned long port =
        std::strtoul(line.c_str() + pos + 7, nullptr, 10);
    if (port == 0 || port > 65535) {
      std::fprintf(stderr, "error: bad port in ready line: %s", line.c_str());
      return 0;
    }
    return static_cast<uint16_t>(port);
  }
  std::fprintf(stderr, "error: server exited before ready line\n");
  return 0;
}

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = wire::HostToNet16(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed mid-pipeline is an EPIPE (and a
    // clean "transport error" exit), not a SIGPIPE kill.
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Blocks until one whole frame is extracted from the connection. The
/// payload is copied out so `*buffer` can keep accumulating.
bool ReadFrame(int fd, std::string* buffer, wire::FrameHeader* header,
               std::string* payload, std::string* error) {
  while (true) {
    size_t consumed = 0;
    std::string_view view;
    const wire::FrameStatus status = wire::NextFrame(
        *buffer, wire::kDefaultMaxPayload, &consumed, header, &view, error);
    if (status == wire::FrameStatus::kError) return false;
    if (status == wire::FrameStatus::kFrame) {
      payload->assign(view);
      buffer->erase(0, consumed);
      return true;
    }
    char chunk[1 << 16];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      *error = "server closed the connection mid-frame";
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// Reads `count` predict responses off the socket (ids may arrive in any
/// order across shards) and tallies them. kError frames count as failures
/// but do not abort the session — the server keeps the connection open.
bool TallyPredictReplies(int fd, std::string* buffer, uint64_t count,
                         SessionTally* tally) {
  for (uint64_t i = 0; i < count; ++i) {
    wire::FrameHeader header;
    std::string payload;
    std::string error;
    if (!ReadFrame(fd, buffer, &header, &payload, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return false;
    }
    if (header.op == wire::WireOp::kError) {
      std::string message;
      wire::DecodeErrorFrame(header, payload, &message, &error);
      std::fprintf(stderr, "predict failed: %s\n", message.c_str());
      ++tally->predict_failed;
      continue;
    }
    wire::PredictReply reply;
    if (!wire::DecodePredictResponse(header, payload, &reply, &error)) {
      std::fprintf(stderr, "error: bad predict response: %s\n", error.c_str());
      return false;
    }
    if (reply.shed) {
      std::fprintf(stderr,
                   "predict shed by shard %llu (retry after %u ms)\n",
                   static_cast<unsigned long long>(reply.response.shard),
                   reply.retry_after_ms);
      ++tally->predict_failed;
      continue;
    }
    if (reply.response.ok) {
      ++tally->predict_ok;
      ++tally->with_prediction;
    } else {
      ++tally->predict_failed;
      std::fprintf(stderr, "predict failed: %s\n",
                   reply.response.error.c_str());
    }
    if (reply.response.cache_hit) ++tally->cache_hits;
  }
  return true;
}

/// The wire-transport session: load, pipelined cold batch, optional warm
/// batch, stats, shutdown. Returns false on transport failure (the tally
/// still decides overall health).
bool RunWireSession(int fd, const SessionSpec& spec, SessionTally* tally) {
  std::string buffer;
  wire::FrameHeader header;
  std::string payload;
  std::string error;

  if (!SendAll(fd, wire::EncodeLoadRequest(1, spec.dataset, spec.data_path)) ||
      !ReadFrame(fd, &buffer, &header, &payload, &error)) {
    std::fprintf(stderr, "error: load exchange failed: %s\n", error.c_str());
    return false;
  }
  wire::LoadResult load;
  if (header.op != wire::WireOp::kLoad ||
      !wire::DecodeLoadResponse(header, payload, &load, &error)) {
    std::fprintf(stderr, "error: bad load response: %s\n", error.c_str());
    return false;
  }
  tally->load_ok = load.ok;
  if (!load.ok) std::fprintf(stderr, "load failed: %s\n", load.error.c_str());

  // Pipelined batches: write every predict frame of a pass, then drain the
  // same number of responses.
  const auto send_batch = [&](uint64_t id_base) {
    std::string frames;
    for (uint64_t i = 0; i < spec.requests; ++i) {
      hdidx::service::ServiceRequest request;
      request.id = id_base + i;
      request.dataset = spec.dataset;
      request.method = spec.method;
      request.memory = spec.memory;
      request.k = spec.k;
      request.num_queries = spec.queries;
      request.seed = spec.seed + i;
      frames += wire::EncodePredictRequest(request);
    }
    return SendAll(fd, frames);
  };
  if (!send_batch(1000) ||
      !TallyPredictReplies(fd, &buffer, spec.requests, tally)) {
    return false;
  }
  if (spec.repeat) {
    if (!send_batch(2000) ||
        !TallyPredictReplies(fd, &buffer, spec.requests, tally)) {
      return false;
    }
  }

  if (!SendAll(fd, wire::EncodeStatsRequest(2)) ||
      !ReadFrame(fd, &buffer, &header, &payload, &error)) {
    std::fprintf(stderr, "error: stats exchange failed: %s\n", error.c_str());
    return false;
  }
  hdidx::service::ServiceMetrics metrics;
  if (header.op != wire::WireOp::kStats ||
      !wire::DecodeStatsResponse(header, payload, &metrics, &error)) {
    std::fprintf(stderr, "error: bad stats response: %s\n", error.c_str());
    return false;
  }
  std::printf("stats: %s\n",
              hdidx::service::SerializeMetrics(metrics).c_str());

  if (!SendAll(fd, wire::EncodeShutdownRequest(3)) ||
      !ReadFrame(fd, &buffer, &header, &payload, &error)) {
    std::fprintf(stderr, "error: shutdown exchange failed: %s\n",
                 error.c_str());
    return false;
  }
  uint64_t served = 0;
  tally->shutdown_ok =
      header.op == wire::WireOp::kShutdown &&
      wire::DecodeShutdownResponse(header, payload, &served, &error);
  return true;
}

// --- json transport -----------------------------------------------------

/// The legacy line-protocol session over the server's stdin/stdout pipes.
void RunJsonSession(FILE* to_child, FILE* from_child,
                    const std::vector<std::string>& lines,
                    SessionTally* tally) {
  // The whole session fits comfortably in the pipe buffer, so write it all
  // up front, close, then drain responses.
  for (const auto& line : lines) std::fprintf(to_child, "%s\n", line.c_str());
  std::fclose(to_child);

  char buffer[1 << 16];
  while (std::fgets(buffer, sizeof(buffer), from_child) != nullptr) {
    const std::string line(buffer);
    if (Contains(line, "\"op\":\"ready\"")) {
      continue;
    } else if (Contains(line, "\"op\":\"load\"")) {
      tally->load_ok = Contains(line, "\"ok\":true");
      if (!tally->load_ok) {
        std::fprintf(stderr, "load failed: %s", line.c_str());
      }
    } else if (Contains(line, "\"op\":\"predict\"")) {
      if (Contains(line, "\"ok\":true")) {
        ++tally->predict_ok;
      } else {
        ++tally->predict_failed;
        std::fprintf(stderr, "predict failed: %s", line.c_str());
      }
      if (Contains(line, "\"cache\":\"hit\"")) ++tally->cache_hits;
      if (Contains(line, "\"avg_leaf_accesses\":")) ++tally->with_prediction;
    } else if (Contains(line, "\"op\":\"stats\"")) {
      std::printf("stats: %s", line.c_str());
    } else if (Contains(line, "\"op\":\"shutdown\"")) {
      tally->shutdown_ok = Contains(line, "\"ok\":true");
    } else if (Contains(line, "\"op\":\"error\"")) {
      std::fprintf(stderr, "protocol error: %s", line.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(argc, argv,
                           {"serve", "data", "dataset", "method", "memory",
                            "k", "queries", "requests", "seed", "repeat",
                            "json", "emit"});

  SessionSpec spec;
  spec.dataset = flags.GetString("dataset", "d");
  spec.data_path = flags.GetString("data", "");
  spec.method = flags.GetString("method", "resampled");
  spec.memory = flags.GetUint("memory", 10000);
  spec.k = flags.GetUint("k", 10);
  spec.queries = flags.GetUint("queries", 100);
  spec.requests = flags.GetUint("requests", 4);
  spec.seed = flags.GetUint("seed", 1);
  spec.repeat = flags.GetString("repeat", "true") != "false";
  const bool json = flags.GetBool("json");
  const bool emit = flags.GetBool("emit");
  std::string serve_cmd = flags.GetString("serve", "");
  flags.ExitOnError(kUsage);

  if (spec.data_path.empty() || (!emit && serve_cmd.empty())) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  if (emit) {
    for (const auto& line : ComposeLines(spec)) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  // The same --serve command works for both transports: the client flips
  // the server into line-protocol mode itself.
  if (json) serve_cmd += " --json";

  pid_t pid = -1;
  FILE* to_child = nullptr;
  FILE* from_child = nullptr;
  if (!Spawn(serve_cmd, &pid, &to_child, &from_child)) {
    std::fprintf(stderr, "error: cannot spawn '%s'\n", serve_cmd.c_str());
    return 1;
  }

  SessionTally tally;
  bool transport_ok = true;
  if (json) {
    RunJsonSession(to_child, from_child, ComposeLines(spec), &tally);
  } else {
    std::fclose(to_child);  // the wire server never reads stdin
    const uint16_t port = ReadReadyPort(from_child);
    const int fd = port != 0 ? ConnectLoopback(port) : -1;
    if (fd < 0) {
      if (port != 0) {
        std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%u\n",
                     static_cast<unsigned>(port));
      }
      transport_ok = false;
    } else {
      transport_ok = RunWireSession(fd, spec, &tally);
      close(fd);
    }
    // Drain anything else the server printed so it never blocks on a full
    // stdout pipe before exiting.
    char sink[1 << 12];
    while (std::fgets(sink, sizeof(sink), from_child) != nullptr) {
    }
  }
  std::fclose(from_child);

  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "error: server exited uncleanly (status %d)\n",
                 status);
    return 1;
  }

  const uint64_t expected = spec.requests * (spec.repeat ? 2 : 1);
  std::printf("session: %llu/%llu predictions ok, %llu cache hits, "
              "load %s, shutdown %s\n",
              static_cast<unsigned long long>(tally.predict_ok),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(tally.cache_hits),
              tally.load_ok ? "ok" : "FAILED",
              tally.shutdown_ok ? "clean" : "MISSING");

  const bool healthy = transport_ok && tally.load_ok && tally.shutdown_ok &&
                       tally.predict_failed == 0 &&
                       tally.predict_ok == expected &&
                       tally.with_prediction == expected &&
                       (!spec.repeat || tally.cache_hits >= spec.requests);
  if (!healthy) {
    std::fprintf(stderr, "error: unhealthy session\n");
    return 1;
  }
  return 0;
}
