// hdidx_client: batch client for hdidx_serve.
//
// Composes a load + predict batch over the line protocol, spawns the server
// (--serve "cmd"), pipes the requests in, checks every response, and prints
// a session summary. With --repeat (default on) the same batch is sent
// twice — the second pass must be served from the mini-index cache, which
// the client verifies from the "cache":"hit" metadata. Exits 0 only on a
// fully healthy session (all predictions ok, warm batch hit the cache,
// clean shutdown), so CI can use it as a one-command smoke test.
//
// Usage:
//   hdidx_client --serve "./hdidx_serve --shards 2" --data data.hdx
//                [--dataset d] [--method resampled] [--memory 10000]
//                [--k 10] [--queries 100] [--requests 4] [--seed 1]
//                [--repeat true] [--emit]
//
// --emit prints the request lines to stdout instead of spawning a server
// (for manual piping: hdidx_client --emit ... | hdidx_serve).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "flags.h"
#include "service/protocol.h"

namespace {

using hdidx::service::JsonQuote;

constexpr char kUsage[] =
    "usage: hdidx_client --serve CMD --data FILE [--dataset NAME]\n"
    "                    [--method mini|cutoff|resampled] [--memory M]\n"
    "                    [--k K] [--queries Q] [--requests R] [--seed S]\n"
    "                    [--repeat BOOL] [--emit]\n";

struct SessionSpec {
  std::string dataset;
  std::string data_path;
  std::string method;
  uint64_t memory = 0;
  uint64_t k = 0;
  uint64_t queries = 0;
  uint64_t requests = 0;
  uint64_t seed = 0;
  bool repeat = true;
};

std::vector<std::string> ComposeLines(const SessionSpec& spec) {
  std::vector<std::string> lines;
  lines.push_back("{\"op\":\"load\",\"dataset\":" + JsonQuote(spec.dataset) +
                  ",\"path\":" + JsonQuote(spec.data_path) + "}");
  const auto batch = [&](std::vector<std::string>* out) {
    for (uint64_t i = 0; i < spec.requests; ++i) {
      out->push_back(
          "{\"op\":\"predict\",\"dataset\":" + JsonQuote(spec.dataset) +
          ",\"method\":" + JsonQuote(spec.method) +
          ",\"memory\":" + std::to_string(spec.memory) +
          ",\"k\":" + std::to_string(spec.k) +
          ",\"num_queries\":" + std::to_string(spec.queries) +
          ",\"seed\":" + std::to_string(spec.seed + i) + "}");
    }
    out->push_back("");  // flush the batch
  };
  batch(&lines);
  if (spec.repeat) batch(&lines);  // warm pass: must hit the cache
  lines.push_back("{\"op\":\"stats\"}");
  lines.push_back("{\"op\":\"shutdown\"}");
  return lines;
}

/// Spawns `command` via /bin/sh with stdin/stdout piped; returns false on
/// fork/pipe failure.
bool Spawn(const std::string& command, pid_t* pid, FILE** to_child,
           FILE** from_child) {
  int in_pipe[2];   // parent -> child
  int out_pipe[2];  // child -> parent
  if (pipe(in_pipe) != 0) return false;
  if (pipe(out_pipe) != 0) {
    close(in_pipe[0]);
    close(in_pipe[1]);
    return false;
  }
  *pid = fork();
  if (*pid < 0) return false;
  if (*pid == 0) {
    dup2(in_pipe[0], STDIN_FILENO);
    dup2(out_pipe[1], STDOUT_FILENO);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(), nullptr);
    std::perror("exec");
    _exit(127);
  }
  close(in_pipe[0]);
  close(out_pipe[1]);
  *to_child = fdopen(in_pipe[1], "w");
  *from_child = fdopen(out_pipe[0], "r");
  return *to_child != nullptr && *from_child != nullptr;
}

bool Contains(const std::string& line, const char* needle) {
  return line.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(argc, argv,
                           {"serve", "data", "dataset", "method", "memory",
                            "k", "queries", "requests", "seed", "repeat",
                            "emit"});

  SessionSpec spec;
  spec.dataset = flags.GetString("dataset", "d");
  spec.data_path = flags.GetString("data", "");
  spec.method = flags.GetString("method", "resampled");
  spec.memory = flags.GetUint("memory", 10000);
  spec.k = flags.GetUint("k", 10);
  spec.queries = flags.GetUint("queries", 100);
  spec.requests = flags.GetUint("requests", 4);
  spec.seed = flags.GetUint("seed", 1);
  spec.repeat = flags.GetString("repeat", "true") != "false";
  const bool emit = flags.GetBool("emit");
  const std::string serve_cmd = flags.GetString("serve", "");
  flags.ExitOnError(kUsage);

  if (spec.data_path.empty() || (!emit && serve_cmd.empty())) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const std::vector<std::string> lines = ComposeLines(spec);
  if (emit) {
    for (const auto& line : lines) std::printf("%s\n", line.c_str());
    return 0;
  }

  pid_t pid = -1;
  FILE* to_child = nullptr;
  FILE* from_child = nullptr;
  if (!Spawn(serve_cmd, &pid, &to_child, &from_child)) {
    std::fprintf(stderr, "error: cannot spawn '%s'\n", serve_cmd.c_str());
    return 1;
  }

  // The whole session fits comfortably in the pipe buffer, so write it all
  // up front, close, then drain responses.
  for (const auto& line : lines) std::fprintf(to_child, "%s\n", line.c_str());
  std::fclose(to_child);

  bool load_ok = false;
  bool shutdown_ok = false;
  uint64_t predict_ok = 0;
  uint64_t predict_failed = 0;
  uint64_t cache_hits = 0;
  uint64_t with_prediction = 0;
  char buffer[1 << 16];
  while (std::fgets(buffer, sizeof(buffer), from_child) != nullptr) {
    const std::string line(buffer);
    if (Contains(line, "\"op\":\"load\"")) {
      load_ok = Contains(line, "\"ok\":true");
      if (!load_ok) std::fprintf(stderr, "load failed: %s", line.c_str());
    } else if (Contains(line, "\"op\":\"predict\"")) {
      if (Contains(line, "\"ok\":true")) {
        ++predict_ok;
      } else {
        ++predict_failed;
        std::fprintf(stderr, "predict failed: %s", line.c_str());
      }
      if (Contains(line, "\"cache\":\"hit\"")) ++cache_hits;
      if (Contains(line, "\"avg_leaf_accesses\":")) ++with_prediction;
    } else if (Contains(line, "\"op\":\"stats\"")) {
      std::printf("stats: %s", line.c_str());
    } else if (Contains(line, "\"op\":\"shutdown\"")) {
      shutdown_ok = Contains(line, "\"ok\":true");
    } else if (Contains(line, "\"op\":\"error\"")) {
      std::fprintf(stderr, "protocol error: %s", line.c_str());
    }
  }
  std::fclose(from_child);

  int status = 0;
  if (waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "error: server exited uncleanly (status %d)\n",
                 status);
    return 1;
  }

  const uint64_t expected =
      spec.requests * (spec.repeat ? 2 : 1);
  std::printf("session: %llu/%llu predictions ok, %llu cache hits, "
              "load %s, shutdown %s\n",
              static_cast<unsigned long long>(predict_ok),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(cache_hits),
              load_ok ? "ok" : "FAILED", shutdown_ok ? "clean" : "MISSING");

  const bool healthy = load_ok && shutdown_ok && predict_failed == 0 &&
                       predict_ok == expected &&
                       with_prediction == expected &&
                       (!spec.repeat || cache_hits >= spec.requests);
  if (!healthy) {
    std::fprintf(stderr, "error: unhealthy session\n");
    return 1;
  }
  return 0;
}
