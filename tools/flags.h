#ifndef HDIDX_TOOLS_FLAGS_H_
#define HDIDX_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/parallel.h"

namespace hdidx::tools {

/// Minimal --flag=value / --flag value parser for the command-line tools.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  uint64_t GetUint(const std::string& name, uint64_t fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? std::strtoull(it->second.c_str(), nullptr, 10)
                               : fallback;
  }

  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? std::strtod(it->second.c_str(), nullptr)
                               : fallback;
  }

  bool GetBool(const std::string& name) const {
    const auto it = values_.find(name);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Applies the shared --threads flag: a positive value overrides the
/// HDIDX_THREADS / hardware-concurrency policy for this process. Call before
/// any library work so the shared pool is sized accordingly (results are
/// identical for every thread count either way — only wall-clock changes).
inline void ApplyThreadsFlag(const Flags& flags) {
  const uint64_t threads = flags.GetUint("threads", 0);
  if (threads > 0) common::SetThreadCount(static_cast<size_t>(threads));
}

}  // namespace hdidx::tools

#endif  // HDIDX_TOOLS_FLAGS_H_
