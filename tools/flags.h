#ifndef HDIDX_TOOLS_FLAGS_H_
#define HDIDX_TOOLS_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <set>
#include <string>

#include "common/parallel.h"

namespace hdidx::tools {

/// Minimal --flag=value / --flag value parser for the command-line tools.
///
/// Parsing is strict: when a known-flag list is supplied, unknown flags are
/// an error, and GetUint/GetDouble record an error for values that are not
/// entirely a valid number (instead of silently parsing "3x" as 3 or "abc"
/// as 0). Errors accumulate into error() — tools call ExitOnError() after
/// reading all their flags to fail fast with exit code 2; tests construct
/// Flags directly and inspect ok()/error().
class Flags {
 public:
  /// Accepts any flag names (no known-list validation).
  Flags(int argc, char** argv) { Parse(argc, argv); }

  /// Validates every provided flag against `known`; unknown flags are
  /// recorded as errors.
  Flags(int argc, char** argv, std::initializer_list<const char*> known) {
    Parse(argc, argv);
    const std::set<std::string> allowed(known.begin(), known.end());
    for (const auto& [name, unused] : values_) {
      if (allowed.count(name) == 0) {
        RecordError("unknown flag: --" + name);
      }
    }
  }

  /// True iff no parse or validation error has been recorded so far.
  bool ok() const { return error_.empty(); }

  /// The first recorded error ("" if none).
  const std::string& error() const { return error_; }

  /// Prints the first error to stderr and exits with code 2 if any error
  /// was recorded. Call after reading every flag, before doing real work.
  void ExitOnError(const char* usage = nullptr) const {
    if (ok()) return;
    std::fprintf(stderr, "error: %s\n", error_.c_str());
    if (usage != nullptr) std::fprintf(stderr, "%s", usage);
    std::exit(2);
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : fallback;
  }

  uint64_t GetUint(const std::string& name, uint64_t fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    if (v.empty() || v[0] == '-') {
      RecordError("--" + name + " expects a non-negative integer, got '" + v +
                  "'");
      return fallback;
    }
    char* end = nullptr;
    errno = 0;
    const uint64_t parsed = std::strtoull(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size() || errno != 0) {
      RecordError("--" + name + " expects a non-negative integer, got '" + v +
                  "'");
      return fallback;
    }
    return parsed;
  }

  double GetDouble(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    const std::string& v = it->second;
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size()) {
      RecordError("--" + name + " expects a number, got '" + v + "'");
      return fallback;
    }
    return parsed;
  }

  bool GetBool(const std::string& name) const {
    const auto it = values_.find(name);
    return it != values_.end() && it->second != "false" && it->second != "0";
  }

 private:
  void Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        RecordError("unexpected argument: " + arg);
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  void RecordError(std::string message) const {
    if (error_.empty()) error_ = std::move(message);
  }

  std::map<std::string, std::string> values_;
  // Get* are logically const reads; a malformed value discovered there is
  // still an input error worth recording, hence mutable.
  mutable std::string error_;
};

/// Applies the shared --threads flag: a positive value overrides the
/// HDIDX_THREADS / hardware-concurrency policy for this process. Call before
/// any library work so the shared pool is sized accordingly (results are
/// identical for every thread count either way — only wall-clock changes).
inline void ApplyThreadsFlag(const Flags& flags) {
  const uint64_t threads = flags.GetUint("threads", 0);
  if (threads > 0) common::SetThreadCount(static_cast<size_t>(threads));
}

}  // namespace hdidx::tools

#endif  // HDIDX_TOOLS_FLAGS_H_
