#!/usr/bin/env python3
"""Cached clang-tidy driver for hdidx.

Runs clang-tidy over every translation unit in a compile_commands.json,
skipping files whose (source content, includes-digest, .clang-tidy, command)
hash produced a clean run before. The cache makes the CI step incremental:
an actions/cache restore of --cache-dir turns an unchanged-tree run into a
few seconds of hashing.

Exit codes: 0 clean, 2 findings (diagnostics already printed as file:line),
1 environment problems (no clang-tidy, no compile database).
"""

import argparse
import concurrent.futures
import hashlib
import json
import pathlib
import shutil
import subprocess
import sys


def file_digest(path):
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return "unreadable"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root holding .clang-tidy and src/ "
                             "(default: cwd)")
    parser.add_argument("--build-dir", default="build",
                        help="directory holding compile_commands.json")
    parser.add_argument("--cache-dir", default=".cache/clang-tidy",
                        help="directory for clean-run stamps")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy binary")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--filter", default="/(src|tools|tests)/",
                        help="only lint TUs whose path contains this "
                             "substring-regex")
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        sys.stderr.write(f"{args.clang_tidy} not found on PATH\n")
        return 1

    root = pathlib.Path(args.root).resolve()
    if not (root / ".clang-tidy").exists():
        # A silently missing config would hash as a constant and stop config
        # edits from ever invalidating the cache — refuse instead.
        sys.stderr.write(f"no .clang-tidy under {root} (use --root)\n")
        return 1
    db_path = pathlib.Path(args.build_dir) / "compile_commands.json"
    if not db_path.exists():
        sys.stderr.write(
            f"{db_path} missing; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON\n")
        return 1
    entries = json.loads(db_path.read_text())

    import re
    keep = re.compile(args.filter)
    entries = [e for e in entries if keep.search(e["file"])]

    cache_dir = pathlib.Path(args.cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    config_digest = file_digest(root / ".clang-tidy")

    # A clang-tidy upgrade changes which checks exist and what they flag;
    # fold the tool's own version into every key so a restored CI cache from
    # an older runner image cannot mask new findings.
    version = subprocess.run([args.clang_tidy, "--version"],
                             capture_output=True, text=True)
    tool_digest = hashlib.sha256(
        (version.stdout + version.stderr).encode()).hexdigest()

    # One shared headers digest per run (entry_key re-hashes per entry; fold
    # it once here instead for speed).
    headers = hashlib.sha256()
    for header in sorted((root / "src").rglob("*.h")):
        headers.update(file_digest(header).encode())
    headers_digest = headers.hexdigest()

    def key_for(entry):
        # (tool version, .clang-tidy, project headers, source content,
        # compiler invocation): a change to any of them re-lints the TU.
        h = hashlib.sha256()
        h.update(tool_digest.encode())
        h.update(config_digest.encode())
        h.update(headers_digest.encode())
        h.update(file_digest(pathlib.Path(entry["file"])).encode())
        h.update(entry.get("command",
                           " ".join(entry.get("arguments", []))).encode())
        return h.hexdigest()

    pending = []
    cached = 0
    for entry in entries:
        stamp = cache_dir / key_for(entry)
        if stamp.exists():
            cached += 1
        else:
            pending.append((entry, stamp))

    print(f"clang-tidy: {len(entries)} TUs, {cached} cached clean, "
          f"{len(pending)} to check", flush=True)

    failures = 0
    def run(job):
        entry, stamp = job
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", entry["file"]],
            capture_output=True, text=True)
        return entry["file"], stamp, proc

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for source, stamp, proc in pool.map(run, pending):
            output = (proc.stdout or "").strip()
            if proc.returncode == 0 and "warning:" not in output \
                    and "error:" not in output:
                stamp.write_text("clean\n")
                continue
            failures += 1
            print(f"--- findings in {source} ---")
            if output:
                print(output)
            err = (proc.stderr or "").strip()
            if proc.returncode != 0 and err:
                print(err, file=sys.stderr)

    if failures:
        print(f"clang-tidy: findings in {failures} TU(s)", file=sys.stderr)
        return 2
    print("clang-tidy: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
