#!/usr/bin/env python3
"""hdidx determinism / hygiene lint.

Scans library code (src/) for project-rule violations that no general
compiler warning catches but that break the repo's standing contracts:

  rule `nondeterminism` — banned nondeterminism sources in library code.
      rand(, srand(, std::random_device: all library randomness must flow
      through common::Rng so results are bit-identical across platforms and
      thread counts.
      std::chrono::system_clock / high_resolution_clock: wall clocks make
      results depend on when they ran. steady_clock is allowed (it may only
      feed latency metrics, which are excluded from the determinism
      contract); everything else needs an allowlist entry.

  rule `stdout` — std::cout / printf / puts in library code. The library is
      also the serving layer: stray stdout corrupts the line-delimited
      protocol. Tools, benches, and examples are not scanned.

  rule `global` — mutable file-scope state (static / thread_local / extern
      variables at namespace scope that are not const/constexpr). Hidden
      process state is how determinism dies; each one must be explicitly
      allowlisted with a reason, or carry an inline
      `(hdidx-lint: allow-global)` marker in a comment on the line or the
      line above.

  rule `guard` — every header must open with `#pragma once` or a
      `#ifndef HDIDX_..._H_` include guard whose token matches its path.

  rule `intrinsics` — raw SIMD intrinsics (immintrin/arm_neon includes,
      `_mm*` calls, `__m128/256/512` or NEON vector types) outside
      src/geometry/isa/. Per-ISA code lives only in the self-guarded TUs
      compiled with per-file target flags; an intrinsic anywhere else either
      breaks non-x86 builds or silently compiles for the wrong target.

  rule `byteswap` — raw byte-order code (htons/htonl/ntohs/ntohl,
      __builtin_bswap*, std::byteswap) outside src/service/wire.{h,cc}.
      The wire codec is the single place allowed to reason about byte
      order; everything else goes through wire::Append*/WireReader (or
      wire::HostToNet16 for sockaddr ports) so the frame format stays
      pinned by one TU and its golden tests.

  rule `kernel-switch` — a `switch` dispatching on geometry::kernels::
      KernelMode must list every enumerator (kScalar, kGeneric, kAvx2,
      kAvx512, kNeon). A `default:` (or a dropped case) silences -Wswitch,
      so adding an ISA would fall through an unconsidered path instead of
      failing the build.

Violations print as `path:line: rule: message` (clickable in CI logs) and
the process exits 2, so a failure is distinguishable from an internal crash
(exit 1). The allowlist lives in tools/lint_allowlist.txt as `rule path`
lines — checked in, so every exemption is explicit and reviewed.
"""

import argparse
import pathlib
import re
import sys

NONDETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
]

STDOUT_PATTERNS = [
    (re.compile(r"std::cout\b"), "std::cout"),
    (re.compile(r"(?<![\w.:])printf\s*\("), "printf()"),
    (re.compile(r"(?<![\w.:])puts\s*\("), "puts()"),
]

INTRINSIC_PATTERNS = [
    (re.compile(r"#\s*include\s*<(?:immintrin|x86intrin|arm_neon)\.h>"),
     "SIMD intrinsics header"),
    (re.compile(r"\b__m(?:128|256|512)[a-z]*\b"), "x86 vector type"),
    (re.compile(r"\b_mm(?:256|512)?_\w+"), "x86 intrinsic"),
    (re.compile(r"\b(?:float|poly|uint|int)(?:8|16|32|64)x(?:2|4|8|16)_t\b"),
     "NEON vector type"),
]
# The only directory allowed to contain raw intrinsics (self-guarded TUs
# with per-file target flags).
ISA_DIR = pathlib.PurePosixPath("src/geometry/isa")

BYTESWAP_PATTERNS = [
    (re.compile(r"\bhton[sl]\b"), "htons()/htonl()"),
    (re.compile(r"\bntoh[sl]\b"), "ntohs()/ntohl()"),
    (re.compile(r"\b__builtin_bswap(?:16|32|64)\b"), "__builtin_bswap*"),
    (re.compile(r"\bstd::byteswap\b"), "std::byteswap"),
]
# The only files allowed to contain raw byte-order code (the wire codec,
# whose layout is pinned by golden byte tests).
WIRE_FILES = frozenset({
    pathlib.PurePosixPath("src/service/wire.h"),
    pathlib.PurePosixPath("src/service/wire.cc"),
})

KERNEL_ENUMERATORS = ("kScalar", "kGeneric", "kAvx2", "kAvx512", "kNeon")
SWITCH_RE = re.compile(r"\bswitch\s*\(")

GUARD_RE = re.compile(r"#ifndef\s+(HDIDX_[A-Z0-9_]+_H_)")
ALLOW_GLOBAL_MARKER = "hdidx-lint: allow-global"

GLOBAL_DECL_RE = re.compile(
    r"^\s*(?:static|thread_local|extern)\b(?:\s+thread_local\b)?(?P<rest>.*)$")
# Namespace-scope variable with an initializer and no storage keyword, e.g.
# `std::atomic<size_t> g_thread_count_override{0};`. Uninitialized globals
# (`std::mutex g_mu;`) are indistinguishable from declarations by regex and
# rely on review; the rule is a tripwire, not a proof.
VAR_INIT_RE = re.compile(
    r"^[A-Za-z_][\w:<>\s,\*&]*\s[A-Za-z_]\w*\s*(=|\{).*;\s*$")
NON_DECL_KEYWORDS = ("using ", "typedef ", "namespace ", "template",
                     "struct ", "class ", "enum ", "union ", "friend ",
                     "static_assert", "#")
CONST_LIKE_RE = re.compile(r"\b(const|constexpr|constinit)\b")
FUNC_DEF_RE = re.compile(r"\)\s*(const|noexcept|->|\{|;)?\s*$")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so the token patterns never fire inside either."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
            continue
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
            i += 1
            continue
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    # Guards are derived from the include path, which is rooted at src/
    # (target_include_directories points there), not at the repository root.
    parts = rel_path.parts[1:] if rel_path.parts[:1] == ("src",) \
        else rel_path.parts
    token = re.sub(r"[^A-Za-z0-9]", "_", "/".join(parts)).upper()
    return f"HDIDX_{token}_"


class Linter:
    def __init__(self, root, allowlist):
        self.root = root
        self.allowlist = allowlist
        self.used_allows = set()
        self.violations = []

    def allowed(self, rule, rel):
        key = (rule, str(rel))
        if key in self.allowlist:
            self.used_allows.add(key)
            return True
        return False

    def report(self, rel, line_no, rule, message):
        self.violations.append(f"{rel}:{line_no}: {rule}: {message}")

    def lint_file(self, path):
        rel = path.relative_to(self.root)
        raw = path.read_text()
        clean = strip_comments_and_strings(raw)
        raw_lines = raw.split("\n")
        clean_lines = clean.split("\n")

        self.check_patterns(rel, clean_lines)
        if path.suffix == ".h":
            self.check_guard(rel, raw, clean_lines)
        self.check_globals(rel, raw_lines, clean_lines)
        self.check_intrinsics(rel, clean_lines)
        self.check_byteswaps(rel, clean_lines)
        self.check_kernel_switches(rel, clean)

    def check_patterns(self, rel, clean_lines):
        skip_nondet = self.allowed("nondeterminism", rel)
        skip_stdout = self.allowed("stdout", rel)
        for idx, line in enumerate(clean_lines, start=1):
            if not skip_nondet:
                for pattern, label in NONDETERMINISM_PATTERNS:
                    if pattern.search(line):
                        self.report(rel, idx, "nondeterminism",
                                    f"{label} is banned in library code; "
                                    "use common::Rng (or allowlist with a "
                                    "reason)")
            if not skip_stdout:
                for pattern, label in STDOUT_PATTERNS:
                    if pattern.search(line):
                        self.report(rel, idx, "stdout",
                                    f"{label} is banned in library code; "
                                    "return data, let tools print")

    def check_intrinsics(self, rel, clean_lines):
        posix_rel = pathlib.PurePosixPath(rel.as_posix())
        if posix_rel.is_relative_to(ISA_DIR):
            return
        if self.allowed("intrinsics", rel):
            return
        for idx, line in enumerate(clean_lines, start=1):
            for pattern, label in INTRINSIC_PATTERNS:
                if pattern.search(line):
                    self.report(rel, idx, "intrinsics",
                                f"{label} outside src/geometry/isa/; per-ISA "
                                "code belongs in the self-guarded kernel TUs")

    def check_byteswaps(self, rel, clean_lines):
        posix_rel = pathlib.PurePosixPath(rel.as_posix())
        if posix_rel in WIRE_FILES:
            return
        if self.allowed("byteswap", rel):
            return
        for idx, line in enumerate(clean_lines, start=1):
            for pattern, label in BYTESWAP_PATTERNS:
                if pattern.search(line):
                    self.report(rel, idx, "byteswap",
                                f"{label} outside src/service/wire.*; byte "
                                "order belongs to the wire codec — use "
                                "wire::Append*/WireReader or "
                                "wire::HostToNet16")

    def check_kernel_switches(self, rel, clean):
        if self.allowed("kernel-switch", rel):
            return
        for match in SWITCH_RE.finditer(clean):
            # Walk to the matching ')' of the condition, then the body '{'.
            i = clean.index("(", match.start())
            depth = 0
            while i < len(clean):
                if clean[i] == "(":
                    depth += 1
                elif clean[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            body_start = clean.find("{", i)
            if body_start < 0:
                continue
            depth = 0
            end = body_start
            while end < len(clean):
                if clean[end] == "{":
                    depth += 1
                elif clean[end] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                end += 1
            body = clean[body_start:end + 1]
            if not re.search(r"\bcase\s+[\w:]*KernelMode::", body):
                continue
            missing = [e for e in KERNEL_ENUMERATORS
                       if not re.search(r"\bcase\s+[\w:]*\b" + e + r"\b",
                                        body)]
            if missing:
                line_no = clean.count("\n", 0, match.start()) + 1
                self.report(rel, line_no, "kernel-switch",
                            "switch over KernelMode must list every "
                            f"enumerator (missing: {', '.join(missing)}); "
                            "rely on -Wswitch, not default:")

    def check_guard(self, rel, raw, clean_lines):
        if self.allowed("guard", rel):
            return
        if "#pragma once" in raw:
            return
        for idx, line in enumerate(clean_lines, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("//"):
                continue
            match = GUARD_RE.match(stripped)
            if match is None:
                self.report(rel, idx, "guard",
                            "header must start with '#pragma once' or an "
                            f"'#ifndef {expected_guard(rel)}' guard")
            elif match.group(1) != expected_guard(rel):
                self.report(rel, idx, "guard",
                            f"guard token {match.group(1)} does not match "
                            f"path (expected {expected_guard(rel)})")
            return
        self.report(rel, 1, "guard", "header has no include guard")

    def check_globals(self, rel, raw_lines, clean_lines):
        if self.allowed("global", rel):
            return
        depth = 0
        namespace_stack = []  # True for braces opened by namespace lines
        pending_namespace = False
        for idx, line in enumerate(clean_lines, start=1):
            at_file_scope = depth == len(namespace_stack)
            if at_file_scope:
                self.check_global_decl(rel, idx, line, raw_lines)
            if re.search(r"\bnamespace\b", line):
                pending_namespace = True
            for c in line:
                if c == "{":
                    if pending_namespace and depth == len(namespace_stack):
                        namespace_stack.append(True)
                    pending_namespace = False
                    depth += 1
                elif c == "}":
                    depth -= 1
                    if namespace_stack and depth < len(namespace_stack):
                        namespace_stack.pop()
            if pending_namespace and line.strip().endswith(";"):
                pending_namespace = False  # e.g. `using namespace` or fwd decl

    def check_global_decl(self, rel, idx, line, raw_lines):
        stripped = line.strip()
        if CONST_LIKE_RE.search(line) or "static_assert" in line:
            return
        if any(stripped.startswith(k) for k in NON_DECL_KEYWORDS):
            return
        match = GLOBAL_DECL_RE.match(line)
        if match is not None:
            rest = match.group("rest")
            # Function declarations/definitions (internal-linkage helpers)
            # are stateless; only variable declarations are mutable state.
            if not rest.strip():
                return
            if FUNC_DEF_RE.search(rest) and "=" not in rest:
                return
        elif VAR_INIT_RE.match(stripped):
            # A '(' before the initializer, or a line closing with ');' (a
            # signature continuation carrying a default argument), means a
            # function declaration, not a variable.
            if stripped.endswith(");"):
                return
            init_at = min(i for i in (stripped.find("="), stripped.find("{"))
                          if i >= 0)
            if "(" in stripped[:init_at]:
                return
        else:
            return
        here = raw_lines[idx - 1] if idx - 1 < len(raw_lines) else ""
        above = raw_lines[idx - 2] if idx - 2 >= 0 else ""
        if ALLOW_GLOBAL_MARKER in here or ALLOW_GLOBAL_MARKER in above:
            return
        self.report(rel, idx, "global",
                    "mutable file-scope state; mark with "
                    f"'({ALLOW_GLOBAL_MARKER})' or allowlist it")


def load_allowlist(path):
    allowlist = set()
    if not path.exists():
        return allowlist
    for line_no, line in enumerate(path.read_text().split("\n"), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 2:
            sys.stderr.write(
                f"{path}:{line_no}: malformed allowlist line (want "
                f"'rule path'): {stripped}\n")
            sys.exit(1)
        allowlist.add((parts[0], parts[1]))
    return allowlist


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "<root>/tools/lint_allowlist.txt)")
    args = parser.parse_args()

    root = pathlib.Path(args.root).resolve()
    allowlist_path = (pathlib.Path(args.allowlist)
                      if args.allowlist is not None
                      else root / "tools" / "lint_allowlist.txt")
    allowlist = load_allowlist(allowlist_path)

    linter = Linter(root, allowlist)
    files = sorted((root / "src").rglob("*.h")) + \
        sorted((root / "src").rglob("*.cc"))
    if not files:
        sys.stderr.write(f"no sources found under {root}/src\n")
        sys.exit(1)
    for path in files:
        linter.lint_file(path)

    # A stale exemption is itself a finding: allowlists must shrink when the
    # code they excuse goes away.
    for rule, rel in sorted(allowlist - linter.used_allows):
        linter.violations.append(
            f"{allowlist_path.relative_to(root)}:1: allowlist: unused "
            f"exemption '{rule} {rel}' — remove it")

    if linter.violations:
        for violation in linter.violations:
            print(violation)
        print(f"\nhdidx_lint: {len(linter.violations)} violation(s) in "
              f"{len(files)} files", file=sys.stderr)
        sys.exit(2)
    print(f"hdidx_lint: OK ({len(files)} files, "
          f"{len(allowlist)} allowlist entries)")


if __name__ == "__main__":
    main()
