// hdidx_predict: predict (and optionally measure) the k-NN query cost of a
// VAMSplit R*-tree over a dataset file, straight from the command line.
//
// Usage:
//   hdidx_predict --data data.hdx [--method resampled|cutoff|mini]
//                 [--memory 10000] [--h-upper N] [--queries 500] [--k 21]
//                 [--page-bytes 8192] [--seed 1] [--threads 8]
//                 [--measure] [--confidence-runs 5]
//
// Prints the predicted average leaf page accesses per query, the
// prediction's own simulated I/O cost, and — with --measure — the on-disk
// ground truth and relative error (Table 3 style). --confidence-runs adds a
// Student-t 95% interval across independent sample draws.

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>

#include "common/random.h"
#include "common/stats.h"
#include "core/confidence.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "data/csv.h"
#include "data/dataset_io.h"
#include "flags.h"
#include "index/external_build.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(
      argc, argv,
      {"data", "method", "memory", "h-upper", "queries", "k", "page-bytes",
       "seed", "threads", "measure", "confidence-runs", "csv-header",
       "csv-skip-columns"});
  flags.ExitOnError("usage: hdidx_predict --data FILE [options]\n");
  // Size the shared pool before any prediction work; results are identical
  // for every thread count (see README "Parallel execution").
  tools::ApplyThreadsFlag(flags);

  const std::string path = flags.GetString("data", "");
  const bool measure = flags.GetBool("measure");
  const size_t ci_runs = flags.GetUint("confidence-runs", 0);
  if (path.empty()) {
    std::fprintf(stderr, "usage: hdidx_predict --data FILE [options]\n");
    return 2;
  }
  std::string error;
  // .csv files go through the text importer; anything else is the binary
  // format written by hdidx_gen / WriteDataset.
  std::optional<data::Dataset> loaded;
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".csv") {
    data::CsvOptions csv;
    csv.has_header = flags.GetBool("csv-header");
    csv.skip_columns = flags.GetUint("csv-skip-columns", 0);
    flags.ExitOnError();
    loaded = data::ReadCsv(path, csv, &error);
  } else {
    loaded = data::ReadDataset(path, &error);
  }
  if (!loaded.has_value()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const data::Dataset& dataset = *loaded;

  io::DiskModel disk;
  disk.page_bytes = flags.GetUint("page-bytes", 8192);
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  const std::string method = flags.GetString("method", "resampled");
  const size_t memory = flags.GetUint("memory", 10000);
  const size_t q = flags.GetUint("queries", 500);
  const size_t k = flags.GetUint("k", 21);
  const uint64_t seed = flags.GetUint("seed", 1);
  const size_t h_upper =
      flags.GetUint("h-upper", topology.height() >= 3
                                   ? core::ChooseHupper(topology, memory)
                                   : 2);
  flags.ExitOnError();

  std::printf("dataset:  %zu points x %zu dims (%s)\n", dataset.size(),
              dataset.dim(), path.c_str());
  std::printf("index:    height %zu, %zu leaf pages, C_data=%zu, C_dir=%zu\n",
              topology.height(), topology.NumLeaves(),
              topology.data_capacity(), topology.dir_capacity());
  std::printf("workload: %zu density-biased %zu-NN queries\n", q, k);
  std::printf("threads:  %zu\n", common::ThreadCount());

  common::Rng rng(seed);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, k, &rng);

  auto predict_once = [&](uint64_t prediction_seed) {
    if (method == "mini") {
      core::MiniIndexParams params;
      params.sampling_fraction =
          std::min(1.0, static_cast<double>(memory) /
                            static_cast<double>(dataset.size()));
      params.seed = prediction_seed;
      return core::PredictWithMiniIndex(dataset, topology, workload, params);
    }
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    if (method == "cutoff") {
      core::CutoffParams params;
      params.memory_points = memory;
      params.h_upper = h_upper;
      params.seed = prediction_seed;
      return core::PredictWithCutoffTree(&file, topology, workload, params);
    }
    core::ResampledParams params;
    params.memory_points = memory;
    params.h_upper = h_upper;
    params.seed = prediction_seed;
    return core::PredictWithResampledTree(&file, topology, workload, params);
  };

  const core::PredictionResult result = predict_once(seed + 1);
  std::printf("\nmethod:   %s (M=%zu, h_upper=%zu, sigma_upper=%.4f, "
              "sigma_lower=%.4f)\n",
              method.c_str(), memory, result.h_upper, result.sigma_upper,
              result.sigma_lower);
  std::printf("predicted: %.1f leaf page accesses per query\n",
              result.avg_leaf_accesses);
  std::printf("prediction I/O: %llu seeks + %llu transfers = %.3f s\n",
              static_cast<unsigned long long>(result.io.page_seeks),
              static_cast<unsigned long long>(result.io.page_transfers),
              result.io.CostSeconds(disk));

  if (ci_runs >= 2) {
    const auto ci = core::EstimateWithConfidence(
        [&](uint64_t s) { return predict_once(s).avg_leaf_accesses; },
        ci_runs, seed + 100);
    std::printf("95%% interval over %zu draws: %.1f +- %.1f  [%.1f, %.1f]\n",
                ci.runs, ci.mean, ci.hi - ci.mean, ci.lo, ci.hi);
  }

  if (measure) {
    std::printf("\nbuilding the on-disk index for ground truth...\n");
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    index::ExternalBuildOptions build;
    build.topology = &topology;
    build.memory_points = memory;
    build.exec = &common::DefaultExecutionContext();
    const index::ExternalBuildResult on_disk =
        index::BuildOnDisk(&file, build);
    io::IoStats query_io;
    const double measured =
        common::Mean(index::CountSphereLeafAccesses(
            on_disk.tree, workload.queries(), workload.radii(), &query_io));
    std::printf("measured:  %.1f leaf page accesses per query\n", measured);
    std::printf("relative error: %+.1f%%\n",
                100.0 * common::RelativeError(result.avg_leaf_accesses,
                                              measured));
    std::printf("on-disk I/O (build + queries): %.3f s (%.0fx the "
                "prediction)\n",
                (on_disk.io + query_io).CostSeconds(disk),
                (on_disk.io + query_io).CostSeconds(disk) /
                    std::max(1e-9, result.io.CostSeconds(disk)));
  }
  return 0;
}
