#!/usr/bin/env python3
"""Fixture tests for tools/hdidx_lint.py.

The lint gates every ctest run, but until now nothing tested the lint
itself — a regex regression could silently stop a rule from ever firing.
Each test writes a minimal fixture tree, runs the lint as a subprocess
(the same way CMake does), and asserts the exact `path:line: rule`
diagnostic — or its absence on conforming code.
"""

import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = pathlib.Path(__file__).resolve().parent
LINT = TOOLS_DIR / "hdidx_lint.py"

CLEAN_HEADER = """\
#ifndef HDIDX_{token}_H_
#define HDIDX_{token}_H_
{body}
#endif  // HDIDX_{token}_H_
"""


def run_lint(root, allowlist=None):
    cmd = [sys.executable, str(LINT), "--root", str(root)]
    if allowlist is not None:
        cmd += ["--allowlist", str(allowlist)]
    return subprocess.run(cmd, capture_output=True, text=True)


class LintFixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        (self.root / "src").mkdir()
        (self.root / "tools").mkdir()
        self.allowlist = self.root / "tools" / "lint_allowlist.txt"
        self.allowlist.write_text("")

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def header(self, rel, body):
        token = rel.replace("src/", "").rsplit(".", 1)[0] \
            .replace("/", "_").upper()
        return self.write(rel, CLEAN_HEADER.format(token=token, body=body))

    def assert_violation(self, proc, fragment):
        self.assertEqual(proc.returncode, 2,
                         f"expected exit 2, got {proc.returncode}:\n"
                         f"{proc.stdout}{proc.stderr}")
        self.assertIn(fragment, proc.stdout)

    def assert_clean(self, proc):
        self.assertEqual(proc.returncode, 0,
                         f"expected clean, got:\n{proc.stdout}{proc.stderr}")

    def test_nondeterminism_rand_fires(self):
        self.write("src/a.cc", "int F() { return rand(); }\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:1: nondeterminism:")

    def test_nondeterminism_random_device_fires(self):
        self.write("src/a.cc",
                   "#include <random>\nstd::random_device rd;\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:2: nondeterminism:")

    def test_nondeterminism_in_comment_passes(self):
        self.write("src/a.cc", "// rand() would be wrong here\n"
                   "int F() { return 4; }\n")
        self.assert_clean(run_lint(self.root))

    def test_stdout_fires(self):
        self.write("src/a.cc",
                   "#include <iostream>\nvoid F() { std::cout << 1; }\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:2: stdout:")

    def test_global_mutable_fires_and_marker_suppresses(self):
        self.write("src/a.cc", "static int g_count = 0;\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:1: global:")

        self.write("src/a.cc",
                   "static int g_count = 0;  // (hdidx-lint: allow-global)\n")
        self.assert_clean(run_lint(self.root))

    def test_global_const_passes(self):
        self.write("src/a.cc", "static const int kLimit = 3;\n"
                   "constexpr double kPi = 3.14;\n")
        self.assert_clean(run_lint(self.root))

    def test_guard_missing_fires(self):
        self.write("src/a.h", "int F();\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.h:1: guard:")

    def test_guard_wrong_token_fires(self):
        self.write("src/a.h", CLEAN_HEADER.format(token="WRONG_NAME",
                                                  body="int F();"))
        proc = run_lint(self.root)
        self.assert_violation(proc, "guard:")

    def test_guard_correct_passes(self):
        self.header("src/a.h", "int F();")
        self.assert_clean(run_lint(self.root))

    def test_intrinsics_outside_isa_fires(self):
        self.write("src/a.cc",
                   "#include <immintrin.h>\n__m256 v;\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:1: intrinsics:")

    def test_intrinsics_inside_isa_passes(self):
        self.write("src/geometry/isa/block_ops_avx2.cc",
                   "#include <immintrin.h>\nvoid F() { _mm256_setzero_ps(); }"
                   "\n")
        self.assert_clean(run_lint(self.root))

    def test_byteswap_outside_wire_fires(self):
        self.write("src/a.cc",
                   "#include <arpa/inet.h>\n"
                   "int F(int p) { return htons(p); }\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:2: byteswap:")

    def test_byteswap_builtin_and_std_fire(self):
        self.write("src/a.cc",
                   "unsigned F(unsigned v) { return __builtin_bswap32(v); }\n"
                   "unsigned G(unsigned v) { return std::byteswap(v); }\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:1: byteswap:")
        self.assertIn("src/a.cc:2: byteswap:", proc.stdout)

    def test_byteswap_inside_wire_passes(self):
        self.write("src/service/wire.cc",
                   "int HostToNet16(int p) { return htons(p); }\n")
        self.assert_clean(run_lint(self.root))

    def test_byteswap_wrapper_call_passes(self):
        # Callers go through the wire wrapper; its name must not trip the
        # raw-token patterns.
        self.write("src/a.cc",
                   "int F(int p) { return wire::HostToNet16(p); }\n")
        self.assert_clean(run_lint(self.root))

    def test_kernel_switch_incomplete_fires(self):
        self.write("src/a.cc", """\
int F(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar: return 0;
    case KernelMode::kGeneric: return 1;
    default: return 2;
  }
}
""")
        proc = run_lint(self.root)
        self.assert_violation(proc, "src/a.cc:2: kernel-switch:")

    def test_kernel_switch_complete_passes(self):
        self.write("src/a.cc", """\
int F(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar: return 0;
    case KernelMode::kGeneric: return 1;
    case KernelMode::kAvx2: return 2;
    case KernelMode::kAvx512: return 3;
    case KernelMode::kNeon: return 4;
  }
  return 0;
}
""")
        self.assert_clean(run_lint(self.root))

    def test_allowlist_suppresses_and_unused_entry_fires(self):
        self.write("src/a.cc", "static int g_state = 0;\n")
        self.allowlist.write_text("global src/a.cc\n")
        self.assert_clean(run_lint(self.root))

        # An entry is "used" as long as its file is scanned; it goes stale
        # when the file it excuses disappears.
        (self.root / "src" / "a.cc").unlink()
        self.write("src/b.cc", "int F();\n")
        proc = run_lint(self.root)
        self.assert_violation(proc, "allowlist:")
        self.assertIn("global src/a.cc", proc.stdout)

    def test_real_tree_is_clean(self):
        proc = run_lint(TOOLS_DIR.parent)
        self.assert_clean(proc)


if __name__ == "__main__":
    unittest.main()
