// hdidx_gen: generate a dataset and write it in the library's binary format.
//
// Usage:
//   hdidx_gen --out data.hdx --kind texture60 [--n 30000] [--seed 1]
//   hdidx_gen --out data.hdx --kind uniform --n 100000 --dim 8
//   hdidx_gen --out data.hdx --kind clustered --n 50000 --dim 32
//             --clusters 24 --intrinsic 6 [--threads 8]
//   hdidx_gen --out data.hdx --kind clustered --n 50000 --digest
//             --data-cap 33 --dir-cap 16 --threads 8
//
// Kinds: color64, texture48, texture60 (= landsat), isolet617, stock360
// (surrogates of the paper's datasets, Table 1), uniform, clustered.
//
// --digest additionally bulk-loads a VAMSplit R*-tree over the generated
// dataset on the process-wide pool (so --threads / HDIDX_THREADS drive the
// parallel build) and prints its layout digest — the same value for every
// thread count, making the build determinism checkable from the shell.
// --split picks the split strategy (maxvar, maxextent, roundrobin, or the
// sample-first adaptive pipeline).

#include <cstdio>
#include <string>

#include "common/parallel.h"
#include "common/random.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "flags.h"
#include "index/bulk_loader.h"
#include "index/topology.h"

constexpr char kUsage[] =
    "usage: hdidx_gen --out FILE --kind KIND [--n N] [--seed S]\n"
    "                 [--dim D] [--clusters C] [--intrinsic I] [--noise F]\n"
    "                 [--threads T] [--digest] [--data-cap C] [--dir-cap C]\n"
    "                 [--split maxvar|maxextent|roundrobin|adaptive]\n"
    "       kinds: color64 texture48 texture60 landsat "
    "isolet617 stock360 uniform clustered\n";

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(argc, argv,
                           {"out", "kind", "n", "seed", "dim", "clusters",
                            "intrinsic", "noise", "threads", "digest",
                            "data-cap", "dir-cap", "split"});
  flags.ExitOnError(kUsage);
  tools::ApplyThreadsFlag(flags);

  const std::string out = flags.GetString("out", "");
  const std::string kind = flags.GetString("kind", "texture60");
  const size_t n = flags.GetUint("n", 0);
  const uint64_t seed = flags.GetUint("seed", 1);
  const size_t uniform_dim = flags.GetUint("dim", 8);
  const size_t clustered_dim = flags.GetUint("dim", 16);
  const size_t clusters = flags.GetUint("clusters", 20);
  const double intrinsic = flags.GetDouble("intrinsic", 6.0);
  const double noise = flags.GetDouble("noise", 0.02);
  flags.ExitOnError(kUsage);
  if (out.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  data::Dataset dataset(1);
  if (kind == "color64") {
    dataset = data::Color64Surrogate(n, seed);
  } else if (kind == "texture48") {
    dataset = data::Texture48Surrogate(n, seed);
  } else if (kind == "texture60" || kind == "landsat") {
    dataset = data::Texture60Surrogate(n, seed);
  } else if (kind == "isolet617") {
    dataset = data::Isolet617Surrogate(n, seed);
  } else if (kind == "stock360") {
    dataset = data::Stock360Surrogate(n, seed);
  } else if (kind == "uniform") {
    common::Rng rng(seed);
    dataset = data::GenerateUniform(n != 0 ? n : 100000, uniform_dim, &rng);
  } else if (kind == "clustered") {
    common::Rng rng(seed);
    data::ClusteredConfig config;
    config.num_points = n != 0 ? n : 100000;
    config.dim = clustered_dim;
    config.num_clusters = clusters;
    config.intrinsic_dim = intrinsic;
    config.noise_fraction = noise;
    dataset = data::GenerateClustered(config, &rng);
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
    return 2;
  }

  std::string error;
  if (!data::WriteDataset(dataset, out, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %zu points x %zu dims to %s\n", dataset.size(),
              dataset.dim(), out.c_str());

  if (flags.GetBool("digest")) {
    const size_t data_cap = flags.GetUint("data-cap", 33);
    const size_t dir_cap = flags.GetUint("dir-cap", 16);
    const std::string split = flags.GetString("split", "maxvar");
    const index::TreeTopology topology(dataset.size(), data_cap, dir_cap);
    index::BulkLoadOptions options;
    options.topology = &topology;
    if (split == "maxvar") {
      options.split_strategy = index::SplitStrategy::kMaxVariance;
    } else if (split == "maxextent") {
      options.split_strategy = index::SplitStrategy::kMaxExtent;
    } else if (split == "roundrobin") {
      options.split_strategy = index::SplitStrategy::kRoundRobin;
    } else if (split == "adaptive") {
      options.split_strategy = index::SplitStrategy::kAdaptiveSample;
    } else {
      std::fprintf(stderr, "unknown split strategy: %s\n", split.c_str());
      return 2;
    }
    options.exec = &common::DefaultExecutionContext();
    const index::RTree tree = index::BulkLoadInMemory(dataset, options);
    std::printf("layout digest: %016llx (%zu nodes, %zu threads)\n",
                static_cast<unsigned long long>(index::TreeLayoutDigest(tree)),
                tree.num_nodes(), common::ThreadCount());
  }
  return 0;
}
