// hdidx_gen: generate a dataset and write it in the library's binary format.
//
// Usage:
//   hdidx_gen --out data.hdx --kind texture60 [--n 30000] [--seed 1]
//   hdidx_gen --out data.hdx --kind uniform --n 100000 --dim 8
//   hdidx_gen --out data.hdx --kind clustered --n 50000 --dim 32
//             --clusters 24 --intrinsic 6 [--threads 8]
//
// Kinds: color64, texture48, texture60 (= landsat), isolet617, stock360
// (surrogates of the paper's datasets, Table 1), uniform, clustered.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "flags.h"

constexpr char kUsage[] =
    "usage: hdidx_gen --out FILE --kind KIND [--n N] [--seed S]\n"
    "                 [--dim D] [--clusters C] [--intrinsic I] [--noise F]\n"
    "                 [--threads T]\n"
    "       kinds: color64 texture48 texture60 landsat "
    "isolet617 stock360 uniform clustered\n";

int main(int argc, char** argv) {
  using namespace hdidx;
  const tools::Flags flags(argc, argv,
                           {"out", "kind", "n", "seed", "dim", "clusters",
                            "intrinsic", "noise", "threads"});
  flags.ExitOnError(kUsage);
  tools::ApplyThreadsFlag(flags);

  const std::string out = flags.GetString("out", "");
  const std::string kind = flags.GetString("kind", "texture60");
  const size_t n = flags.GetUint("n", 0);
  const uint64_t seed = flags.GetUint("seed", 1);
  const size_t uniform_dim = flags.GetUint("dim", 8);
  const size_t clustered_dim = flags.GetUint("dim", 16);
  const size_t clusters = flags.GetUint("clusters", 20);
  const double intrinsic = flags.GetDouble("intrinsic", 6.0);
  const double noise = flags.GetDouble("noise", 0.02);
  flags.ExitOnError(kUsage);
  if (out.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  data::Dataset dataset(1);
  if (kind == "color64") {
    dataset = data::Color64Surrogate(n, seed);
  } else if (kind == "texture48") {
    dataset = data::Texture48Surrogate(n, seed);
  } else if (kind == "texture60" || kind == "landsat") {
    dataset = data::Texture60Surrogate(n, seed);
  } else if (kind == "isolet617") {
    dataset = data::Isolet617Surrogate(n, seed);
  } else if (kind == "stock360") {
    dataset = data::Stock360Surrogate(n, seed);
  } else if (kind == "uniform") {
    common::Rng rng(seed);
    dataset = data::GenerateUniform(n != 0 ? n : 100000, uniform_dim, &rng);
  } else if (kind == "clustered") {
    common::Rng rng(seed);
    data::ClusteredConfig config;
    config.num_points = n != 0 ? n : 100000;
    config.dim = clustered_dim;
    config.num_clusters = clusters;
    config.intrinsic_dim = intrinsic;
    config.noise_fraction = noise;
    dataset = data::GenerateClustered(config, &rng);
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
    return 2;
  }

  std::string error;
  if (!data::WriteDataset(dataset, out, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %zu points x %zu dims to %s\n", dataset.size(),
              dataset.dim(), out.c_str());
  return 0;
}
