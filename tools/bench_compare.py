#!/usr/bin/env python3
"""Compares a google-benchmark JSON run against BENCH_BASELINE.json.

The baseline pins the PR 6 kernel-layer numbers (BM_CountLeafIntersections,
BM_ExactKthScan, BM_SlabBuild) with their custom counters:

  speedup_vs_pr5 — how much faster this mode is than the PR 5 generic
      batched lane on the same shape (0 for the scalar oracle rows).
  bytes_touched — bytes the kernel streams per iteration; a pure function
      of the input shape, so any drift means the kernel started reading a
      different working set, not that the machine got slower.

It also pins the external-build I/O counters (BM_ExternalBuild):

  data_passes / pages_read — the simulated page transfers of an on-disk
      bulk load, normalized and raw. Deterministic functions of the build
      pipeline, so they gate exactly like bytes_touched.

Timings move with the host, so the timing gate is advisory by default
(--max-regression inf): CI prints the table and warns. Drift in any exact
counter (bytes_touched, data_passes, pages_read) is always an error — they
are machine-independent. speedup_vs_vamsplit is wall-clock and therefore
never gated.

Usage:
  bench_micro --benchmark_filter='...' --benchmark_format=json > run.json
  tools/bench_compare.py --baseline BENCH_BASELINE.json run.json
  tools/bench_compare.py --baseline ... run.json --max-regression 0.5
      # fail when speedup_vs_pr5 drops more than 50% below baseline

Exit status: 0 clean/warn-only, 1 hard failure (bytes drift, or a speedup
regression beyond --max-regression), 2 usage/format error.

`--selftest` runs a built-in fixture check (no benchmark binary needed).
"""

import argparse
import json
import math
import pathlib
import sys

# Rows whose benchmark errored (e.g. "neon not supported on this host")
# are skipped: availability depends on the machine, not the code.
# Machine-independent counters: any drift is a hard error.
EXACT_COUNTERS = ("bytes_touched", "data_passes", "pages_read")


def load_rows(path_or_obj):
    if isinstance(path_or_obj, (str, pathlib.Path)):
        with open(path_or_obj, encoding="utf-8") as f:
            doc = json.load(f)
    else:
        doc = path_or_obj
    rows = {}
    for bench in doc.get("benchmarks", ()):
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            continue
        rows[bench["name"]] = bench
    return rows


def compare(baseline_rows, run_rows, max_regression):
    """Returns (report lines, warnings, errors)."""
    lines, warnings, errors = [], [], []
    common = sorted(set(baseline_rows) & set(run_rows))
    if not common:
        errors.append("no common benchmark rows between baseline and run")
        return lines, warnings, errors
    only_base = sorted(set(baseline_rows) - set(run_rows))
    only_run = sorted(set(run_rows) - set(baseline_rows))
    for name in only_base:
        warnings.append(f"baseline row missing from run: {name}")
    for name in only_run:
        warnings.append(f"run row not in baseline: {name}")

    lines.append(f"{'benchmark':<48} {'speedup_vs_pr5':>18} "
                 f"{'exact counters':>22}")
    for name in common:
        base, run = baseline_rows[name], run_rows[name]

        exact_notes = []
        compared = 0
        for counter in EXACT_COUNTERS:
            base_value = base.get(counter)
            run_value = run.get(counter)
            if base_value is None or run_value is None:
                continue
            compared += 1
            if run_value != base_value:
                exact_notes.append(
                    f"{counter} {base_value:g} -> {run_value:g}")
                errors.append(
                    f"{name}: {counter} drifted "
                    f"{base_value:g} -> {run_value:g}; the code touches "
                    f"different pages/bytes than the baseline")
        if exact_notes:
            bytes_note = ", ".join(exact_notes)
        else:
            bytes_note = "=" if compared else "-"

        base_speed = base.get("speedup_vs_pr5")
        run_speed = run.get("speedup_vs_pr5")
        speed_note = "-"
        if base_speed is not None and run_speed is not None:
            speed_note = f"{base_speed:.2f} -> {run_speed:.2f}"
            # Scalar-oracle rows carry 0 by construction; nothing to gate.
            if base_speed > 0:
                ratio = run_speed / base_speed
                if ratio < 1.0 - max_regression:
                    errors.append(
                        f"{name}: speedup_vs_pr5 regressed "
                        f"{base_speed:.2f} -> {run_speed:.2f} "
                        f"(more than {max_regression:.0%} below baseline)")
                elif ratio < 0.8:
                    warnings.append(
                        f"{name}: speedup_vs_pr5 {base_speed:.2f} -> "
                        f"{run_speed:.2f} (timing-sensitive; check the "
                        f"host before reading much into it)")
        lines.append(f"{name:<48} {speed_note:>18} {bytes_note:>16}")
    return lines, warnings, errors


def selftest():
    def doc(rows):
        return {"benchmarks": rows}

    base = doc([
        {"name": "BM_X/1", "speedup_vs_pr5": 4.0, "bytes_touched": 100.0},
        {"name": "BM_X/2", "speedup_vs_pr5": 0.0, "bytes_touched": 100.0},
        {"name": "BM_Gone", "speedup_vs_pr5": 1.0, "bytes_touched": 1.0},
        {"name": "BM_Err", "error_occurred": True,
         "error_message": "unsupported"},
    ])

    # Identical run: clean.
    _, warnings, errors = compare(load_rows(base), load_rows(base),
                                  max_regression=math.inf)
    assert not errors, errors
    assert len(warnings) == 0, warnings

    # bytes drift: always an error; missing rows warn.
    run = doc([
        {"name": "BM_X/1", "speedup_vs_pr5": 4.1, "bytes_touched": 128.0},
        {"name": "BM_X/2", "speedup_vs_pr5": 0.0, "bytes_touched": 100.0},
        {"name": "BM_New", "speedup_vs_pr5": 9.0, "bytes_touched": 5.0},
    ])
    _, warnings, errors = compare(load_rows(base), load_rows(run),
                                  max_regression=math.inf)
    assert any("bytes_touched drifted" in e for e in errors), errors
    assert any("BM_Gone" in w for w in warnings), warnings
    assert any("BM_New" in w for w in warnings), warnings

    # External-build I/O counters gate exactly; wall-clock speedup does not.
    ext_base = doc([
        {"name": "BM_Ext/1", "data_passes": 5.5, "pages_read": 2200.0,
         "speedup_vs_vamsplit": 1.9},
    ])
    ext_run = doc([
        {"name": "BM_Ext/1", "data_passes": 7.5, "pages_read": 3000.0,
         "speedup_vs_vamsplit": 0.4},
    ])
    _, _, errors = compare(load_rows(ext_base), load_rows(ext_run),
                           max_regression=math.inf)
    assert any("data_passes drifted" in e for e in errors), errors
    assert any("pages_read drifted" in e for e in errors), errors
    assert not any("speedup_vs_vamsplit" in e for e in errors), errors

    # Speedup collapse: warn when advisory, error when gated.
    run = doc([
        {"name": "BM_X/1", "speedup_vs_pr5": 1.0, "bytes_touched": 100.0},
        {"name": "BM_X/2", "speedup_vs_pr5": 0.0, "bytes_touched": 100.0},
    ])
    _, warnings, errors = compare(load_rows(base), load_rows(run),
                                  max_regression=math.inf)
    assert not errors, errors
    assert any("timing-sensitive" in w for w in warnings), warnings
    _, _, errors = compare(load_rows(base), load_rows(run),
                           max_regression=0.5)
    assert any("regressed" in e for e in errors), errors

    # Errored baseline rows are ignored even if the run reports them.
    assert "BM_Err" not in load_rows(base)

    print("bench_compare selftest: OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff benchmark counters against the pinned baseline.")
    parser.add_argument("run", nargs="?", help="benchmark JSON to check")
    parser.add_argument("--baseline",
                        default=str(pathlib.Path(__file__).resolve()
                                    .parent.parent / "BENCH_BASELINE.json"))
    parser.add_argument("--max-regression", type=float, default=math.inf,
                        help="fail when speedup_vs_pr5 falls more than this "
                        "fraction below baseline (default: never — "
                        "warn-only)")
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if args.run is None:
        parser.error("a run JSON is required (or --selftest)")

    try:
        baseline_rows = load_rows(args.baseline)
        run_rows = load_rows(args.run)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"bench_compare: {err}", file=sys.stderr)
        return 2

    lines, warnings, errors = compare(baseline_rows, run_rows,
                                      args.max_regression)
    for line in lines:
        print(line)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
