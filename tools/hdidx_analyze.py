#!/usr/bin/env python3
"""hdidx_analyze: AST-level concurrency-contract analyzer.

The annotations in src/common/thread_annotations.h state contracts the
compiler alone cannot enforce end-to-end: Clang's -Wthread-safety checks
lock discipline inside one function, but nothing checks that the
*annotations themselves* cover what they claim, or that the repo's
build-phase/read-phase ownership rule holds across the call graph. This
tool closes that gap with four repo-specific rules:

  rule `guarded` — guarded-by coverage. A class that owns a mutex
      (common::Mutex or std::mutex field) must say, for every mutable
      field, how that field is synchronized: HDIDX_GUARDED_BY(mu),
      HDIDX_UNGUARDED (with a comment explaining the protocol), or an
      allowlist entry. const fields, atomics, the mutexes and condvars
      themselves are exempt. An unannotated field in a lock-owning class
      is exactly where the next data race gets added.

  rule `phase` — ownership-phase discipline. Functions tagged
      HDIDX_BUILD_ONLY (arena allocation, BoxSlab/RTree mutation, bulk
      loading) are single-owner build-phase code; functions tagged
      HDIDX_CONCURRENT_READ (kernel entry points, registry Find, tree
      queries) run concurrently on shared immutable state. No
      concurrent-read function may reach a build-only function through
      the call graph — such an edge would mutate shared state under
      concurrent readers. Reported with the offending call chain.

  rule `switch` — exhaustive enum switches, generalized from
      hdidx_lint's KernelMode-only rule to every enum defined in src/:
      a switch over a project enum must list every enumerator and carry
      no `default:` (a default silences -Wswitch, so a new enumerator
      would fall through an unconsidered path instead of failing the
      build).

  rule `hygiene` — every allowlist entry must still match something.
      A stale exemption is a contract nobody is honoring anymore.

Frontends (--frontend):
  cindex — libclang via clang.cindex over build/compile_commands.json.
      Exact AST: qualified names, resolved call targets, enum-typed
      switch subjects. Used by CI, where python3-clang is installed.
  lite — a self-contained tokenizer/structural parser with no
      dependencies beyond the standard library. Same facts model,
      name-based call graph. Runs anywhere (the ctest gate uses it).
  auto — cindex when importable, else lite (the default).

Violations print as `path:line: rule: message` and exit status is the
violation count (capped at 1 for shells).

Allowlist (--allowlist, default tools/analyze_allowlist.txt): lines of
`rule value  # reason`, where value is
  guarded  Class::field
  phase    RootFunction->TargetFunction
  switch   path/to/file.cc:EnumName
Unused entries are themselves violations (rule `hygiene`).
"""

from __future__ import annotations

import argparse
import collections
import dataclasses
import pathlib
import re
import sys

SRC_EXTENSIONS = {".h", ".cc"}

TAG_BUILD_ONLY = "build_only"
TAG_CONCURRENT_READ = "concurrent_read"

# Source spellings (both the macro names and the raw annotate strings, so
# the lite frontend reads macros and the cindex frontend reads attributes).
TAG_TOKENS = {
    "HDIDX_BUILD_ONLY": TAG_BUILD_ONLY,
    "HDIDX_CONCURRENT_READ": TAG_CONCURRENT_READ,
    "hdidx::build_only": TAG_BUILD_ONLY,
    "hdidx::concurrent_read": TAG_CONCURRENT_READ,
}

GUARDED_MACROS = {"HDIDX_GUARDED_BY", "HDIDX_PT_GUARDED_BY"}
UNGUARDED_MACRO = "HDIDX_UNGUARDED"

CPP_KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "consteval", "constexpr", "constinit",
    "const_cast", "continue", "decltype", "default", "delete", "do",
    "double", "dynamic_cast", "else", "enum", "explicit", "export",
    "extern", "false", "final", "float", "for", "friend", "goto", "if",
    "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "override", "private", "protected", "public",
    "register", "reinterpret_cast", "requires", "return", "short",
    "signed", "sizeof", "static", "static_assert", "static_cast",
    "struct", "switch", "template", "this", "thread_local", "throw",
    "true", "try", "typedef", "typeid", "typename", "union", "unsigned",
    "using", "virtual", "void", "volatile", "wchar_t", "while",
}


# ---------------------------------------------------------------------------
# Facts model (shared by both frontends)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Field:
    name: str
    file: str
    line: int
    guarded: bool = False
    unguarded: bool = False
    is_const: bool = False
    is_atomic: bool = False
    is_mutex: bool = False
    is_condvar: bool = False
    is_static: bool = False


@dataclasses.dataclass
class Record:
    name: str
    file: str
    line: int
    fields: list = dataclasses.field(default_factory=list)

    def owns_mutex(self):
        return any(f.is_mutex for f in self.fields)


@dataclasses.dataclass
class Function:
    name: str
    file: str
    line: int
    tags: set = dataclasses.field(default_factory=set)
    calls: set = dataclasses.field(default_factory=set)
    has_body: bool = False


@dataclasses.dataclass
class EnumDef:
    name: str
    file: str
    line: int
    enumerators: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Switch:
    file: str
    line: int
    labels: list = dataclasses.field(default_factory=list)
    has_default: bool = False
    enum_name: str = ""  # resolved subject enum (cindex) or "" (lite)


@dataclasses.dataclass
class Facts:
    functions: list = dataclasses.field(default_factory=list)
    records: list = dataclasses.field(default_factory=list)
    enums: list = dataclasses.field(default_factory=list)
    switches: list = dataclasses.field(default_factory=list)


# ---------------------------------------------------------------------------
# Lite frontend: tokenizer + structural parser
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_]\w*)
    | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
    | (?P<punct>::|->|\+\+|--|<<=|>>=|<=|>=|==|!=|&&|\|\||[-+*/%^&|~!<>=?:;,.(){}\[\]#\\@])
    """,
    re.VERBOSE,
)


@dataclasses.dataclass
class Token:
    kind: str
    text: str
    line: int


def strip_comments_and_strings(text):
    """Blanks comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(n, j + 1)
            # Keep quotes so annotate strings inside attributes stay visible.
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_preprocessor(text):
    """Blanks preprocessor directives (including line continuations) —
    run after strip_comments_and_strings so '#' inside strings is gone."""
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                cont = lines[i].rstrip().endswith("\\")
                lines[i] = ""
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


def tokenize(text):
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        tokens.append(Token(kind, m.group(), line))
    return tokens


class LiteParser:
    """Structural parser: scopes, records, fields, functions, enums,
    switches. Intentionally approximate — a tripwire with a clean fallback
    path (the cindex frontend), not a compiler."""

    def __init__(self, relpath, tokens, facts):
        self.relpath = relpath
        self.toks = tokens
        self.facts = facts
        self.i = 0

    def done(self):
        return self.i >= len(self.toks)

    def peek(self, off=0):
        j = self.i + off
        return self.toks[j] if j < len(self.toks) else None

    def parse(self):
        self.parse_scope(class_name=None)

    # -- scope machinery ---------------------------------------------------

    def parse_scope(self, class_name):
        """Parses declarations until the matching '}' (or EOF)."""
        while not self.done():
            tok = self.peek()
            if tok.text == "}":
                self.i += 1
                return
            if tok.text in (";", ":"):  # stray / access specifier tail
                self.i += 1
                continue
            if tok.text in ("public", "private", "protected") and \
                    self.peek(1) and self.peek(1).text == ":":
                self.i += 2
                continue
            self.parse_statement(class_name)

    def collect_head(self):
        """Collects one declaration head: tokens until ';' or '{' at paren
        depth 0 (angle-aware), or a stray '}'. Returns (head, terminator)."""
        head = []
        paren = 0
        angle = 0
        while not self.done():
            tok = self.peek()
            t = tok.text
            if paren == 0 and angle == 0 and t in (";", "{", "}"):
                return head, t
            self.i += 1
            head.append(tok)
            if t == "(":
                paren += 1
            elif t == ")":
                paren = max(0, paren - 1)
            elif t == "<":
                prev = head[-2] if len(head) >= 2 else None
                if prev is not None and (prev.kind == "id" or
                                         prev.text in (">", "::")):
                    angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
        return head, None

    def skip_balanced(self, open_tok, close_tok):
        """self.i points at open_tok; consumes through its match. Returns the
        consumed tokens (exclusive of the outer pair)."""
        assert self.peek().text == open_tok
        self.i += 1
        depth = 1
        body = []
        while not self.done():
            tok = self.peek()
            self.i += 1
            if tok.text == open_tok:
                depth += 1
            elif tok.text == close_tok:
                depth -= 1
                if depth == 0:
                    return body
            body.append(tok)
        return body

    # -- declarations ------------------------------------------------------

    def parse_statement(self, class_name):
        start = self.i
        head, term = self.collect_head()
        if term is None:
            return
        if term == "}":
            return  # parse_scope consumes it
        texts = [t.text for t in head]

        if "namespace" in texts[:3] and term == "{":
            self.i += 1  # '{'
            self.parse_scope(class_name)
            return

        kw = next((t for t in texts if t in ("class", "struct", "union",
                                             "enum")), None)
        if kw == "enum" and term == "{":
            self.parse_enum(head)
            self.expect_semicolon()
            return
        if kw in ("class", "struct", "union") and term == "{" and \
                not self.head_is_function(head):
            name = self.record_name(head)
            record = Record(name=name or "<anon>", file=self.relpath,
                            line=head[0].line)
            self.facts.records.append(record)
            self.i += 1  # '{'
            self.parse_scope(class_name=record)
            self.expect_semicolon()
            return

        if self.head_is_function(head):
            self.parse_function(head, term, class_name)
            return

        if term == "{":
            # Braced initializer in a declaration: consume, then the rest of
            # the statement, and treat the whole thing as one declaration.
            init = self.skip_balanced("{", "}")
            tail, tail_term = self.collect_head()
            if tail_term == ";":
                self.i += 1
            if isinstance(class_name, Record):
                self.record_field(head, class_name)
            return

        # term == ';'
        self.i += 1
        if isinstance(class_name, Record):
            self.record_field(head, class_name)
        elif self.head_has_call_parens(head):
            # Free-function declaration: registers tags placed on prototypes
            # (the normal spot for entry-point annotations).
            self.register_function_decl(head, has_body=False, body=None)

    def parse_enum(self, head):
        """head = 'enum [class|struct] Name [: underlying]'; self.i at '{'."""
        texts = [t.text for t in head]
        name = None
        k = texts.index("enum")
        j = k + 1
        while j < len(texts):
            if texts[j] in ("class", "struct"):
                j += 1
                continue
            if texts[j] == ":":
                break
            if head[j].kind == "id":
                name = texts[j]
            break
        enum = EnumDef(name=name or "<anon>", file=self.relpath,
                       line=head[0].line)
        body = self.skip_balanced("{", "}")
        expect_name = True
        depth = 0
        for tok in body:
            if tok.text in ("(", "{", "["):
                depth += 1
            elif tok.text in (")", "}", "]"):
                depth -= 1
            elif depth == 0 and tok.text == ",":
                expect_name = True
            elif depth == 0 and expect_name and tok.kind == "id":
                enum.enumerators.append(tok.text)
                expect_name = False
        self.facts.enums.append(enum)

    def expect_semicolon(self):
        if not self.done() and self.peek().text == ";":
            self.i += 1

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def head_has_call_parens(head):
        """True when the head has a '(' preceded by an identifier at angle
        depth 0 — the parameter list of a function declarator."""
        angle = 0
        for idx, tok in enumerate(head):
            t = tok.text
            if t == "<":
                prev = head[idx - 1] if idx else None
                if prev is not None and (prev.kind == "id" or
                                         prev.text in (">", "::")):
                    angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == "(" and angle == 0:
                prev = head[idx - 1] if idx else None
                if prev is not None and prev.kind == "id" and \
                        prev.text not in GUARDED_MACROS and \
                        not prev.text.startswith("HDIDX_"):
                    return True
        return False

    def head_is_function(self, head):
        return self.head_has_call_parens(head)

    @staticmethod
    def record_name(head):
        texts = [t.text for t in head]
        try:
            k = next(i for i, t in enumerate(texts)
                     if t in ("class", "struct", "union"))
        except StopIteration:
            return None
        j = k + 1
        while j < len(texts):
            t = texts[j]
            if t.startswith("HDIDX_") or t == "alignas":
                j += 1
                if j < len(texts) and texts[j] == "(":
                    depth = 0
                    while j < len(texts):
                        if texts[j] == "(":
                            depth += 1
                        elif texts[j] == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    j += 1
                continue
            if head[j].kind == "id":
                # Skip over a name that is immediately followed by '::'
                # (qualified out-of-line definitions never reach here).
                return t
            break
        return None

    def record_field(self, head, record):
        texts = [t.text for t in head]
        if not texts or texts[0] in ("using", "typedef", "friend",
                                     "static_assert", "template", "enum",
                                     "class", "struct", "union"):
            return
        if "operator" in texts:  # operator decls are functions, not fields
            return
        guarded = any(t in GUARDED_MACROS for t in texts)
        unguarded = UNGUARDED_MACRO in texts
        is_static = "static" in texts
        # Strip annotation macros (and their argument lists) before looking
        # at the declaration proper.
        clean = []
        j = 0
        while j < len(head):
            t = texts[j]
            if t in GUARDED_MACROS or t == UNGUARDED_MACRO or \
                    t in TAG_TOKENS:
                j += 1
                if j < len(texts) and texts[j] == "(":
                    depth = 0
                    while j < len(texts):
                        if texts[j] == "(":
                            depth += 1
                        elif texts[j] == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
                    j += 1
                continue
            clean.append(head[j])
            j += 1
        if not clean:
            return
        # Field name: the identifier before '=' (or the trailing one).
        name = None
        for idx, tok in enumerate(clean):
            if tok.text == "=":
                prev = clean[idx - 1] if idx else None
                if prev is not None and prev.kind == "id":
                    name = prev.text
                break
        if name is None:
            for tok in reversed(clean):
                if tok.kind == "id" and tok.text not in CPP_KEYWORDS:
                    name = tok.text
                    break
        if name is None:
            return
        clean_texts = [t.text for t in clean]
        # Type classification at angle depth 0 (so `span<const T>` is not
        # "const" and std::atomic's parameter does not leak out).
        angle = 0
        top = []
        for idx, t in enumerate(clean_texts):
            if t == "<":
                prev = clean[idx - 1] if idx else None
                if prev is not None and (prev.kind == "id" or
                                         prev.text in (">", "::")):
                    angle += 1
                    continue
            elif t == ">" and angle > 0:
                angle -= 1
                continue
            if angle == 0:
                top.append(t)
        field = Field(
            name=name, file=self.relpath, line=clean[0].line,
            guarded=guarded, unguarded=unguarded,
            is_const=("const" in top or "constexpr" in top),
            is_atomic=("atomic" in clean_texts),
            is_mutex=("Mutex" in top or "mutex" in clean_texts),
            is_condvar=("CondVar" in top or
                        "condition_variable" in clean_texts or
                        "condition_variable_any" in clean_texts),
            is_static=is_static,
        )
        record.fields.append(field)

    # -- functions ---------------------------------------------------------

    @staticmethod
    def function_name(head):
        """Identifier before the first parameter-list '(' (angle depth 0)."""
        angle = 0
        for idx, tok in enumerate(head):
            t = tok.text
            if t == "<":
                prev = head[idx - 1] if idx else None
                if prev is not None and (prev.kind == "id" or
                                         prev.text in (">", "::")):
                    angle += 1
            elif t == ">" and angle > 0:
                angle -= 1
            elif t == "(" and angle == 0:
                prev = head[idx - 1] if idx else None
                if prev is not None and prev.kind == "id" and \
                        not prev.text.startswith("HDIDX_"):
                    return prev.text
        return None

    def register_function_decl(self, head, has_body, body):
        name = self.function_name(head)
        if name is None or name in CPP_KEYWORDS:
            return
        tags = {TAG_TOKENS[t.text] for t in head if t.text in TAG_TOKENS}
        fn = Function(name=name, file=self.relpath, line=head[0].line,
                      tags=tags, has_body=has_body)
        if body is not None:
            fn.calls = self.extract_calls(body)
        self.facts.functions.append(fn)

    def parse_function(self, head, term, class_name):
        if term == ";":
            self.i += 1
            self.register_function_decl(head, has_body=False, body=None)
            return
        # term == '{' — but a constructor initializer list may still be
        # pending (`: mu_(mu)` was consumed into head by collect_head since
        # parens balance). The '{' here is the body.
        body = self.skip_balanced("{", "}")
        self.register_function_decl(head, has_body=True, body=body)
        # Trailing '{...}' bodies need no ';' — but consume one if present
        # so `struct S { ... } s;`-style oddities do not desync.
        self.scan_switches(body)

    @staticmethod
    def extract_calls(body):
        calls = set()
        for idx, tok in enumerate(body):
            if tok.kind != "id" or tok.text in CPP_KEYWORDS:
                continue
            nxt = body[idx + 1] if idx + 1 < len(body) else None
            if nxt is not None and nxt.text == "(":
                calls.add(tok.text)
        return calls

    # -- switches (inside function bodies) ---------------------------------

    def scan_switches(self, body):
        idx = 0
        while idx < len(body):
            if body[idx].text == "switch":
                idx = self.parse_switch(body, idx)
            else:
                idx += 1

    def parse_switch(self, body, idx):
        """body[idx] == 'switch'. Returns the index just past the switch."""
        line = body[idx].line
        j = idx + 1
        # condition
        if j >= len(body) or body[j].text != "(":
            return idx + 1
        depth = 0
        while j < len(body):
            if body[j].text == "(":
                depth += 1
            elif body[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        j += 1
        if j >= len(body) or body[j].text != "{":
            return idx + 1
        # switch body extent
        depth = 0
        k = j
        while k < len(body):
            if body[k].text == "{":
                depth += 1
            elif body[k].text == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        sub = body[j + 1:k]
        sw = Switch(file=self.relpath, line=line)
        m = 0
        while m < len(sub):
            t = sub[m]
            if t.text == "switch":
                m = self.parse_switch(sub, m)  # nested: own Switch record
                continue
            if t.text == "case":
                # label = tokens to ':' ; keep the last identifier.
                label = None
                m += 1
                while m < len(sub) and sub[m].text != ":":
                    if sub[m].kind == "id":
                        label = sub[m].text
                    m += 1
                if label is not None:
                    sw.labels.append(label)
            elif t.text == "default" and m + 1 < len(sub) and \
                    sub[m + 1].text == ":":
                sw.has_default = True
            m += 1
        self.facts.switches.append(sw)
        return k + 1


def build_facts_lite(root, files):
    facts = Facts()
    for path in files:
        rel = str(path.relative_to(root))
        text = strip_preprocessor(strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace")))
        tokens = tokenize(text)
        LiteParser(rel, tokens, facts).parse()
    return facts


# ---------------------------------------------------------------------------
# cindex frontend (CI: python3-clang + libclang over compile_commands.json)
# ---------------------------------------------------------------------------


def build_facts_cindex(root, files, compdb_dir):
    from clang import cindex  # noqa: deferred import — CI-only dependency

    index = cindex.Index.create()
    compdb = cindex.CompilationDatabase.fromDirectory(str(compdb_dir))
    wanted = {str(p) for p in files}
    facts = Facts()
    seen_functions = set()
    seen_records = set()
    seen_enums = set()
    seen_switches = set()

    def relpath(location):
        if location.file is None:
            return None
        p = pathlib.Path(str(location.file)).resolve()
        try:
            return str(p.relative_to(root))
        except ValueError:
            return None

    def annotations(cursor):
        tags = set()
        for child in cursor.get_children():
            if child.kind == cindex.CursorKind.ANNOTATE_ATTR and \
                    child.spelling in TAG_TOKENS:
                tags.add(TAG_TOKENS[child.spelling])
        return tags

    def field_facts(cursor, rel):
        tokens = {t.spelling for t in cursor.get_tokens()}
        type_spelling = cursor.type.spelling
        return Field(
            name=cursor.spelling, file=rel, line=cursor.location.line,
            guarded=bool(tokens & GUARDED_MACROS),
            unguarded=UNGUARDED_MACRO in tokens,
            is_const=cursor.type.is_const_qualified() or
            type_spelling.startswith("const "),
            is_atomic="atomic" in type_spelling,
            is_mutex="Mutex" in type_spelling or "mutex" in type_spelling,
            is_condvar="CondVar" in type_spelling or
            "condition_variable" in type_spelling,
            is_static=cursor.storage_class == cindex.StorageClass.STATIC,
        )

    def walk(cursor):
        rel = relpath(cursor.location)
        kind = cursor.kind
        if kind in (cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.CONSTRUCTOR,
                    cindex.CursorKind.FUNCTION_TEMPLATE) and rel:
            key = (rel, cursor.location.line, cursor.spelling)
            if key not in seen_functions:
                seen_functions.add(key)
                fn = Function(name=cursor.spelling.split("<")[0], file=rel,
                              line=cursor.location.line,
                              tags=annotations(cursor),
                              has_body=cursor.is_definition())
                if cursor.is_definition():
                    collect_calls(cursor, fn.calls)
                    collect_switches(cursor, rel)
                facts.functions.append(fn)
        elif kind in (cindex.CursorKind.CLASS_DECL,
                      cindex.CursorKind.STRUCT_DECL) and rel and \
                cursor.is_definition():
            key = (rel, cursor.location.line)
            if key not in seen_records:
                seen_records.add(key)
                record = Record(name=cursor.spelling or "<anon>", file=rel,
                                line=cursor.location.line)
                for child in cursor.get_children():
                    if child.kind == cindex.CursorKind.FIELD_DECL:
                        record.fields.append(field_facts(child, rel))
                facts.records.append(record)
        elif kind == cindex.CursorKind.ENUM_DECL and rel and \
                cursor.is_definition():
            key = (rel, cursor.location.line)
            if key not in seen_enums:
                seen_enums.add(key)
                enum = EnumDef(name=cursor.spelling or "<anon>", file=rel,
                               line=cursor.location.line)
                for child in cursor.get_children():
                    if child.kind == cindex.CursorKind.ENUM_CONSTANT_DECL:
                        enum.enumerators.append(child.spelling)
                facts.enums.append(enum)
        for child in cursor.get_children():
            walk(child)

    def collect_calls(cursor, calls):
        for child in cursor.walk_preorder():
            if child.kind == cindex.CursorKind.CALL_EXPR:
                ref = child.referenced
                if ref is not None and ref.spelling:
                    calls.add(ref.spelling.split("<")[0])

    def collect_switches(cursor, rel):
        for child in cursor.walk_preorder():
            if child.kind != cindex.CursorKind.SWITCH_STMT:
                continue
            key = (rel, child.location.line)
            if key in seen_switches:
                continue
            seen_switches.add(key)
            sw = Switch(file=rel, line=child.location.line)
            children = list(child.get_children())
            if children:
                cond_type = children[0].type.get_canonical()
                decl = cond_type.get_declaration()
                if decl.kind == cindex.CursorKind.ENUM_DECL:
                    sw.enum_name = decl.spelling
            for node in child.walk_preorder():
                if node.kind == cindex.CursorKind.DEFAULT_STMT:
                    sw.has_default = True
                elif node.kind == cindex.CursorKind.CASE_STMT:
                    for ref in node.walk_preorder():
                        if ref.kind == cindex.CursorKind.DECL_REF_EXPR and \
                                ref.referenced is not None and \
                                ref.referenced.kind == \
                                cindex.CursorKind.ENUM_CONSTANT_DECL:
                            sw.labels.append(ref.referenced.spelling)
                            break
            facts.switches.append(sw)

    for entry in compdb.getAllCompileCommands():
        source = str(pathlib.Path(entry.filename).resolve())
        if source not in wanted:
            continue
        args = [a for a in list(entry.arguments)[1:]
                if a not in ("-c", source)]
        # Drop the output pair; libclang only needs the frontend flags.
        cleaned = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a == "-o":
                skip = True
                continue
            cleaned.append(a)
        tu = index.parse(source, args=cleaned)
        walk(tu.cursor)
    return facts


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------


class Allowlist:
    def __init__(self, path):
        self.path = path
        self.entries = {}  # (rule, value) -> line number
        self.used = set()
        if path is not None and path.exists():
            for lineno, raw in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split(None, 1)
                if len(parts) != 2:
                    continue
                self.entries[(parts[0], parts[1].strip())] = lineno

    def allows(self, rule, value):
        key = (rule, value)
        if key in self.entries:
            self.used.add(key)
            return True
        return False

    def unused(self):
        return [(rule, value, lineno)
                for (rule, value), lineno in sorted(self.entries.items(),
                                                    key=lambda kv: kv[1])
                if (rule, value) not in self.used]


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_guarded(facts, allowlist, violations):
    for record in facts.records:
        if not record.owns_mutex():
            continue
        for field in record.fields:
            if (field.is_const or field.is_atomic or field.is_mutex or
                    field.is_condvar or field.is_static or field.guarded or
                    field.unguarded):
                continue
            value = f"{record.name}::{field.name}"
            if allowlist.allows("guarded", value):
                continue
            violations.append((
                field.file, field.line, "guarded",
                f"field '{field.name}' of mutex-owning class "
                f"'{record.name}' is neither HDIDX_GUARDED_BY a mutex nor "
                f"HDIDX_UNGUARDED; state its synchronization or allowlist "
                f"'guarded {value}'"))


def check_phase(facts, allowlist, violations):
    by_name = collections.defaultdict(list)
    for fn in facts.functions:
        by_name[fn.name].append(fn)

    tags = collections.defaultdict(set)
    for fn in facts.functions:
        tags[fn.name] |= fn.tags

    edges = collections.defaultdict(set)
    for fn in facts.functions:
        if not fn.has_body:
            continue
        for callee in fn.calls:
            if callee in by_name:
                edges[fn.name].add(callee)

    roots = sorted(n for n, t in tags.items() if TAG_CONCURRENT_READ in t)
    for root in roots:
        # BFS recording one parent per visited node for chain reporting.
        parent = {root: None}
        queue = collections.deque([root])
        while queue:
            node = queue.popleft()
            if node != root and TAG_BUILD_ONLY in tags[node]:
                chain = []
                cur = node
                while cur is not None:
                    chain.append(cur)
                    cur = parent[cur]
                chain.reverse()
                value = f"{root}->{node}"
                if not allowlist.allows("phase", value):
                    loc = by_name[root][0]
                    violations.append((
                        loc.file, loc.line, "phase",
                        f"HDIDX_CONCURRENT_READ function '{root}' reaches "
                        f"HDIDX_BUILD_ONLY function '{node}' via "
                        f"{' -> '.join(chain)}; concurrent readers must "
                        f"not run build-phase mutation (allowlist "
                        f"'phase {value}' only with a written ownership "
                        f"argument)"))
                continue  # do not traverse past a build_only boundary
            for nxt in sorted(edges.get(node, ())):
                if nxt not in parent:
                    parent[nxt] = node
                    queue.append(nxt)


def check_switch(facts, allowlist, violations):
    enums_by_name = {}
    enumerator_owner = collections.defaultdict(set)
    for enum in facts.enums:
        if not enum.enumerators:
            continue
        enums_by_name[enum.name] = enum
        for e in enum.enumerators:
            enumerator_owner[e].add(enum.name)

    for sw in facts.switches:
        enum = None
        if sw.enum_name and sw.enum_name in enums_by_name:
            enum = enums_by_name[sw.enum_name]
        elif sw.labels:
            candidates = None
            for label in sw.labels:
                owners = enumerator_owner.get(label)
                if owners is None:
                    candidates = set()
                    break
                candidates = owners if candidates is None \
                    else candidates & owners
            if candidates and len(candidates) == 1:
                enum = enums_by_name[next(iter(candidates))]
        if enum is None:
            continue  # not a switch over a project enum
        value = f"{sw.file}:{enum.name}"
        missing = [e for e in enum.enumerators if e not in sw.labels]
        problems = []
        if missing:
            problems.append(f"missing enumerator(s) {', '.join(missing)}")
        if sw.has_default:
            problems.append("has a 'default:' (silences -Wswitch for "
                            "future enumerators)")
        if problems and not allowlist.allows("switch", value):
            violations.append((
                sw.file, sw.line, "switch",
                f"switch over enum '{enum.name}' {'; '.join(problems)}; "
                f"list every enumerator and drop the default, or allowlist "
                f"'switch {value}'"))


def check_hygiene(allowlist, violations):
    for rule, value, lineno in allowlist.unused():
        violations.append((
            str(allowlist.path), lineno, "hygiene",
            f"unused allowlist entry '{rule} {value}' — the exemption no "
            f"longer matches anything; delete it"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def gather_files(root, args_files):
    if args_files:
        return sorted(pathlib.Path(f).resolve() for f in args_files)
    src = root / "src"
    return sorted(p.resolve() for p in src.rglob("*")
                  if p.suffix in SRC_EXTENSIONS)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Concurrency-contract analyzer (see module docstring).")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo containing "
                        "this script)")
    parser.add_argument("--frontend", choices=("auto", "cindex", "lite"),
                        default="auto")
    parser.add_argument("--compdb", type=pathlib.Path, default=None,
                        help="directory containing compile_commands.json "
                        "(default: <root>/build; cindex frontend only)")
    parser.add_argument("--allowlist", type=pathlib.Path, default=None,
                        help="allowlist file (default: "
                        "<root>/tools/analyze_allowlist.txt)")
    parser.add_argument("--rules", default="guarded,phase,switch,hygiene",
                        help="comma-separated subset of rules to run")
    parser.add_argument("files", nargs="*",
                        help="restrict to these files (default: src/**)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    files = gather_files(root, args.files)
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}

    frontend = args.frontend
    if frontend == "auto":
        try:
            import clang.cindex  # noqa: F401
            frontend = "cindex"
        except ImportError:
            frontend = "lite"

    if frontend == "cindex":
        compdb_dir = args.compdb or (root / "build")
        if not (compdb_dir / "compile_commands.json").exists():
            print(f"hdidx_analyze: no compile_commands.json under "
                  f"{compdb_dir}", file=sys.stderr)
            return 2
        facts = build_facts_cindex(root, files, compdb_dir)
    else:
        facts = build_facts_lite(root, files)

    allowlist_path = args.allowlist or (root / "tools" /
                                        "analyze_allowlist.txt")
    allowlist = Allowlist(allowlist_path)

    violations = []
    if "guarded" in rules:
        check_guarded(facts, allowlist, violations)
    if "phase" in rules:
        check_phase(facts, allowlist, violations)
    if "switch" in rules:
        check_switch(facts, allowlist, violations)
    if "hygiene" in rules:
        check_hygiene(allowlist, violations)

    violations.sort()
    for path, line, rule, message in violations:
        print(f"{path}:{line}: {rule}: {message}")
    if violations:
        print(f"\nhdidx_analyze[{frontend}]: {len(violations)} "
              f"violation(s) in {len(files)} files", file=sys.stderr)
        return 1
    print(f"hdidx_analyze[{frontend}]: OK ({len(files)} files, "
          f"{len(facts.functions)} functions, {len(facts.records)} records, "
          f"{len(facts.enums)} enums, {len(facts.switches)} switches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
