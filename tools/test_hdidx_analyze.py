#!/usr/bin/env python3
"""Fixture tests for tools/hdidx_analyze.py (lite frontend).

Each test writes a small C++ snippet into a temp repo layout, runs the
analyzer on it, and asserts the exact rule and line of every expected
diagnostic — proving each rule actually fires (and stays quiet on
conforming code), not just that the real tree happens to be clean.
"""

import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = pathlib.Path(__file__).resolve().parent
ANALYZER = TOOLS_DIR / "hdidx_analyze.py"


def run_analyzer(root, extra_args=()):
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--root", str(root),
         "--frontend", "lite", *extra_args],
        capture_output=True, text=True)
    return proc


class AnalyzerFixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        (self.root / "src").mkdir()
        (self.root / "tools").mkdir()
        # Default: empty allowlist (missing file is fine too).
        self.write("tools/analyze_allowlist.txt", "")

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def assert_violation(self, proc, fragment):
        self.assertEqual(proc.returncode, 1,
                         f"expected a violation, got:\n{proc.stdout}"
                         f"{proc.stderr}")
        self.assertIn(fragment, proc.stdout)

    def assert_clean(self, proc):
        self.assertEqual(proc.returncode, 0,
                         f"expected clean, got:\n{proc.stdout}{proc.stderr}")

    # ---- rule: guarded ---------------------------------------------------

    def test_guarded_unannotated_field_fires(self):
        self.write("src/widget.h", """\
#include <mutex>
class Widget {
 private:
  std::mutex mu_;
  int count_ = 0;
};
""")
        proc = run_analyzer(self.root)
        self.assert_violation(proc, "src/widget.h:5: guarded:")
        self.assertIn("'count_'", proc.stdout)
        self.assertIn("'Widget'", proc.stdout)

    def test_guarded_annotated_and_exempt_fields_pass(self):
        self.write("src/widget.h", """\
class Widget {
 private:
  common::Mutex mu_;
  int count_ HDIDX_GUARDED_BY(mu_) = 0;
  HDIDX_UNGUARDED std::vector<int> startup_only_;
  const size_t capacity_ = 8;
  std::atomic<int> hits_{0};
  CondVar cv_;
};
""")
        self.assert_clean(run_analyzer(self.root))

    def test_guarded_no_mutex_class_is_ignored(self):
        self.write("src/plain.h", """\
struct Plain {
  int anything_goes = 0;
};
""")
        self.assert_clean(run_analyzer(self.root))

    def test_guarded_allowlist_suppresses(self):
        self.write("src/widget.h", """\
#include <mutex>
class Widget {
  std::mutex mu_;
  int count_ = 0;
};
""")
        self.write("tools/analyze_allowlist.txt",
                   "guarded Widget::count_  # test exemption\n")
        self.assert_clean(run_analyzer(self.root))

    # ---- rule: phase -----------------------------------------------------

    def test_phase_direct_call_fires(self):
        self.write("src/paths.h", """\
HDIDX_BUILD_ONLY void* Allocate(int bytes);
HDIDX_CONCURRENT_READ int Find(int key);
""")
        self.write("src/paths.cc", """\
int Find(int key) {
  Allocate(8);
  return key;
}
""")
        proc = run_analyzer(self.root)
        self.assert_violation(proc, "phase:")
        self.assertIn("'Find' reaches", proc.stdout)
        self.assertIn("'Allocate'", proc.stdout)
        self.assertIn("Find -> Allocate", proc.stdout)

    def test_phase_transitive_call_fires_with_chain(self):
        self.write("src/paths.h", """\
HDIDX_BUILD_ONLY void Mutate();
HDIDX_CONCURRENT_READ int Query();
""")
        self.write("src/paths.cc", """\
void Helper() { Mutate(); }
int Query() { Helper(); return 0; }
""")
        proc = run_analyzer(self.root)
        self.assert_violation(proc, "phase:")
        self.assertIn("Query -> Helper -> Mutate", proc.stdout)

    def test_phase_untagged_and_read_to_read_pass(self):
        self.write("src/paths.h", """\
HDIDX_BUILD_ONLY void Mutate();
HDIDX_CONCURRENT_READ int Query();
HDIDX_CONCURRENT_READ int Count();
""")
        self.write("src/paths.cc", """\
void Builder() { Mutate(); }
int Query() { return Count(); }
int Count() { return 1; }
""")
        self.assert_clean(run_analyzer(self.root))

    def test_phase_allowlist_suppresses_and_must_be_used(self):
        self.write("src/paths.h", """\
HDIDX_BUILD_ONLY void Mutate();
HDIDX_CONCURRENT_READ int Query();
""")
        self.write("src/paths.cc", "int Query() { Mutate(); return 0; }\n")
        self.write("tools/analyze_allowlist.txt",
                   "phase Query->Mutate  # test exemption\n")
        self.assert_clean(run_analyzer(self.root))

    # ---- rule: switch ----------------------------------------------------

    def test_switch_missing_enumerator_fires(self):
        self.write("src/modes.cc", """\
enum class Mode { kA, kB, kC };
int Dispatch(Mode m) {
  switch (m) {
    case Mode::kA: return 1;
    case Mode::kB: return 2;
  }
  return 0;
}
""")
        proc = run_analyzer(self.root)
        self.assert_violation(proc, "src/modes.cc:3: switch:")
        self.assertIn("kC", proc.stdout)

    def test_switch_default_fires(self):
        self.write("src/modes.cc", """\
enum class Mode { kA, kB };
int Dispatch(Mode m) {
  switch (m) {
    case Mode::kA: return 1;
    case Mode::kB: return 2;
    default: return 0;
  }
}
""")
        proc = run_analyzer(self.root)
        self.assert_violation(proc, "src/modes.cc:3: switch:")
        self.assertIn("default", proc.stdout)

    def test_switch_exhaustive_and_non_enum_pass(self):
        self.write("src/modes.cc", """\
enum class Mode { kA, kB };
int Dispatch(Mode m, char c) {
  switch (c) {
    case 'x': return 9;
    default: break;
  }
  switch (m) {
    case Mode::kA: return 1;
    case Mode::kB: return 2;
  }
  return 0;
}
""")
        self.assert_clean(run_analyzer(self.root))

    def test_switch_allowlist_suppresses(self):
        self.write("src/modes.cc", """\
enum class Mode { kA, kB };
int Dispatch(Mode m) {
  switch (m) {
    case Mode::kA: return 1;
    default: return 0;
  }
}
""")
        self.write("tools/analyze_allowlist.txt",
                   "switch src/modes.cc:Mode  # test exemption\n")
        self.assert_clean(run_analyzer(self.root))

    # ---- rule: hygiene ---------------------------------------------------

    def test_unused_allowlist_entry_fires(self):
        self.write("src/empty.cc", "int F() { return 0; }\n")
        self.write("tools/analyze_allowlist.txt",
                   "guarded Nothing::nowhere_  # stale\n")
        proc = run_analyzer(self.root)
        self.assert_violation(proc, "hygiene:")
        self.assertIn("guarded Nothing::nowhere_", proc.stdout)

    # ---- end-to-end on this repository -----------------------------------

    def test_real_tree_is_clean(self):
        repo_root = TOOLS_DIR.parent
        proc = run_analyzer(repo_root)
        self.assert_clean(proc)
        # The repo's contracts must actually be visible to the analyzer:
        # a parser regression that drops all annotations would pass
        # vacuously without this.
        self.assertIn("functions", proc.stdout)


if __name__ == "__main__":
    unittest.main()
